"""Tournament branch predictor (local bimodal + gshare + chooser).

The classic Alpha 21264-style tournament design: a per-PC bimodal component,
a global-history gshare component, and a chooser table that learns which
component to trust per branch.  All tables are arrays of 2-bit saturating
counters.

Speculative history management: the global history register is updated
*speculatively* at predict time (the usual high-performance choice) and
repaired on a squash via the snapshot captured in the
:class:`BranchPrediction` returned to the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass


def _saturate(value: int, delta: int, maximum: int = 3) -> int:
    return max(0, min(maximum, value + delta))


class BimodalTable:
    """PC-indexed 2-bit counters (the 'local' tournament component)."""

    def __init__(self, entries: int = 2048) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._counters = [1] * entries  # weakly not-taken

    def _index(self, pc: int) -> int:
        return pc & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        self._counters[index] = _saturate(self._counters[index], 1 if taken else -1)


class GshareTable:
    """Global-history XOR PC indexed 2-bit counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = [1] * entries

    def _index(self, pc: int, history: int) -> int:
        return (pc ^ (history & self._history_mask)) & self._mask

    def predict(self, pc: int, history: int) -> bool:
        return self._counters[self._index(pc, history)] >= 2

    def update(self, pc: int, history: int, taken: bool) -> None:
        index = self._index(pc, history)
        self._counters[index] = _saturate(self._counters[index], 1 if taken else -1)


@dataclass(frozen=True)
class BranchPrediction:
    """A direction prediction plus the state needed to update/repair it."""

    taken: bool
    history_snapshot: int  # global history *before* this prediction
    local_prediction: bool
    global_prediction: bool


class TournamentPredictor:
    """Local + gshare + chooser."""

    def __init__(
        self,
        local_entries: int = 2048,
        global_entries: int = 4096,
        chooser_entries: int = 4096,
        history_bits: int = 12,
    ) -> None:
        self.local = BimodalTable(local_entries)
        self.gshare = GshareTable(global_entries, history_bits)
        self._chooser = [2] * chooser_entries  # weakly prefer global
        self._chooser_mask = chooser_entries - 1
        if chooser_entries & (chooser_entries - 1):
            raise ValueError("chooser entries must be a power of two")
        self._history_mask = (1 << history_bits) - 1
        self.history = 0
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> BranchPrediction:
        """Predict a conditional branch at ``pc``; speculatively shifts the
        taken bit into the global history."""
        snapshot = self.history
        local_prediction = self.local.predict(pc)
        global_prediction = self.gshare.predict(pc, snapshot)
        use_global = self._chooser[pc & self._chooser_mask] >= 2
        taken = global_prediction if use_global else local_prediction
        self.history = ((snapshot << 1) | int(taken)) & self._history_mask
        self.predictions += 1
        return BranchPrediction(
            taken=taken,
            history_snapshot=snapshot,
            local_prediction=local_prediction,
            global_prediction=global_prediction,
        )

    def update(self, pc: int, prediction: BranchPrediction, taken: bool) -> None:
        """Train on the resolved outcome.

        Under STT this is only called once the branch's predicate is
        untainted (Section III: prediction-based implicit channels are
        blocked by keeping tainted data out of predictor state).
        """
        self.local.update(pc, taken)
        self.gshare.update(pc, prediction.history_snapshot, taken)
        local_correct = prediction.local_prediction == taken
        global_correct = prediction.global_prediction == taken
        if local_correct != global_correct:
            index = pc & self._chooser_mask
            self._chooser[index] = _saturate(
                self._chooser[index], 1 if global_correct else -1
            )
        if prediction.taken != taken:
            self.mispredictions += 1

    def repair(self, prediction: BranchPrediction, taken: bool) -> None:
        """Restore global history after a squash: rewind to the snapshot and
        re-insert the now-known outcome."""
        self.history = ((prediction.history_snapshot << 1) | int(taken)) & self._history_mask

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
