"""Branch target buffer.

Direct-mapped tagged target cache.  In our micro-ISA all branch targets are
static (encoded in the instruction), so the BTB's role is to supply the
target *at fetch time* for predicted-taken branches; a BTB miss on a taken
branch costs a fetch redirect even when the direction was right.
"""

from __future__ import annotations


class BranchTargetBuffer:
    def __init__(self, entries: int = 1024) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._tags: list[int | None] = [None] * entries
        self._targets: list[int] = [0] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> int | None:
        """Predicted target for the branch at ``pc``, or None on a miss."""
        index = pc & self._mask
        if self._tags[index] == pc:
            self.hits += 1
            return self._targets[index]
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        index = pc & self._mask
        self._tags[index] = pc
        self._targets[index] = target

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
