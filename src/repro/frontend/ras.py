"""Return address stack.

Our micro-ISA has no call/return instructions (workloads are inlined
kernels), but the RAS is part of the Table I front end and of STT's
implicit-channel story — RAS *updates* are predictor updates and must not be
a function of tainted data — so the structure is implemented and tested, and
available to ISA extensions.

The stack is circular and overwrites on overflow, like hardware.  Snapshots
(top-of-stack pointer + the entry it points at) support squash repair.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RasSnapshot:
    top: int
    top_value: int


class ReturnAddressStack:
    def __init__(self, entries: int = 16) -> None:
        if entries < 1:
            raise ValueError("RAS needs at least one entry")
        self._entries = [0] * entries
        self._top = 0  # index of the next free slot
        self.size = entries

    def snapshot(self) -> RasSnapshot:
        return RasSnapshot(self._top, self._entries[(self._top - 1) % self.size])

    def restore(self, snapshot: RasSnapshot) -> None:
        self._top = snapshot.top
        self._entries[(self._top - 1) % self.size] = snapshot.top_value

    def push(self, return_pc: int) -> None:
        self._entries[self._top % self.size] = return_pc
        self._top += 1

    def pop(self) -> int:
        self._top -= 1
        return self._entries[self._top % self.size]

    def peek(self) -> int:
        return self._entries[(self._top - 1) % self.size]
