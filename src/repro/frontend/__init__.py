"""Front-end prediction structures: tournament branch predictor, BTB, RAS.

Table I specifies a tournament branch predictor.  STT's central corollary
(Section III-B) is that predictor *state* must never become a function of
tainted data: the pipeline only calls :meth:`TournamentPredictor.update`
for branches whose predicate is untainted (or after the taint has cleared),
and the structures themselves are indexed by PC/history — never by data
values.
"""

from repro.frontend.branch_predictor import (
    BimodalTable,
    BranchPrediction,
    GshareTable,
    TournamentPredictor,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack

__all__ = [
    "BimodalTable",
    "BranchPrediction",
    "BranchTargetBuffer",
    "GshareTable",
    "ReturnAddressStack",
    "TournamentPredictor",
]
