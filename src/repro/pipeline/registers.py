"""Physical register file, free list, and rename map.

Taint is a property of *physical registers*, exactly as in STT ("STT does
not maintain taint/untaint information in the cache/memory system, only in
the physical register file").  Each physical register carries a
``taint_root``: the fetch-sequence number of the youngest access instruction
(load) whose output the value transitively depends on — STT's "youngest root
of taint" (YRoT).  ``None`` means architecturally clean data.  Whether a
root is *currently* tainted is a question for the protection scheme's
untaint frontier, not for this file.
"""

from __future__ import annotations

from repro.isa.instructions import FP_BASE, NUM_FP_REGS, NUM_INT_REGS


class PhysRegFile:
    """Values + ready bits + taint roots for physical registers."""

    def __init__(self, num_regs: int) -> None:
        self.num_regs = num_regs
        self.value: list[int | float] = [0] * num_regs
        self.ready: list[bool] = [False] * num_regs
        self.taint_root: list[int | None] = [None] * num_regs
        self._free: list[int] = []

    def mark_ready(self, preg: int, value: int | float) -> None:
        self.value[preg] = value
        self.ready[preg] = True

    def allocate(self) -> int | None:
        """Pop a free register, or None if the file is exhausted (stall)."""
        if not self._free:
            return None
        preg = self._free.pop()
        self.ready[preg] = False
        self.value[preg] = 0
        self.taint_root[preg] = None
        return preg

    def free(self, preg: int) -> None:
        self._free.append(preg)

    def free_count(self) -> int:
        return len(self._free)

    def seed_free_list(self, pregs: list[int]) -> None:
        self._free = list(pregs)


class RenameMap:
    """Architectural -> physical mapping for both register files.

    ``r0`` is pinned to physical register 0, which is permanently ready with
    value 0 and never tainted; writes to it are discarded by the core.
    """

    ZERO_PREG = 0

    def __init__(self, prf: PhysRegFile) -> None:
        self.prf = prf
        self._map: dict[int, int] = {}
        next_preg = 1
        for arch in range(NUM_INT_REGS):
            if arch == 0:
                self._map[arch] = self.ZERO_PREG
                continue
            self._map[arch] = next_preg
            next_preg += 1
        for arch in range(NUM_FP_REGS):
            self._map[FP_BASE + arch] = next_preg
            next_preg += 1
        for preg in range(next_preg):
            prf.mark_ready(preg, 0 if preg < NUM_INT_REGS else 0.0)
        prf.value[self.ZERO_PREG] = 0
        prf.seed_free_list(list(range(next_preg, prf.num_regs)))
        self._architectural_pregs = next_preg

    def lookup(self, arch: int) -> int:
        return self._map[arch]

    def rename_dest(self, arch: int) -> tuple[int, int] | None:
        """Allocate a new physical register for a write to ``arch``.

        Returns ``(new_preg, old_preg)`` for rollback, or None if out of
        physical registers (rename stalls).  Writes to r0 still allocate a
        sink register so the dataflow is uniform; the mapping is simply not
        updated, preserving r0 == 0.
        """
        new_preg = self.prf.allocate()
        if new_preg is None:
            return None
        old_preg = self._map[arch]
        if arch != 0:
            self._map[arch] = new_preg
        return new_preg, old_preg

    def rollback_dest(self, arch: int, old_preg: int) -> None:
        """Undo one rename (used while squash-walking the ROB tail-first)."""
        if arch != 0:
            self._map[arch] = old_preg

    def snapshot(self) -> dict[int, int]:
        return dict(self._map)
