"""Load and store queues.

The store queue supports the disambiguation policy the core uses
(conservative: a load issues only once every older store's address is
known) and store-to-load forwarding (youngest older matching store wins).

The load queue tracks in-flight and completed-but-uncommitted loads, which
is where memory-consistency checks live: an invalidation of a line read by
such a load may require a squash (Section V-C1).  For Obl-Lds the relevant
twist is that a line read from *below* the L1 produces no invalidation at
the core at all — the validation/exposure mechanism compensates.
"""

from __future__ import annotations

from repro.pipeline.uop import DynInst, UopState


class StoreQueue:
    """Program-ordered window of in-flight stores."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.peak_occupancy = 0
        self._entries: list[DynInst] = []  # fetch order

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, uop: DynInst) -> None:
        if self.full:
            raise RuntimeError("SQ overflow — dispatch must check capacity")
        self._entries.append(uop)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def remove(self, uop: DynInst) -> None:
        self._entries.remove(uop)

    def squash_younger_than(self, seq: int) -> None:
        if self._entries and self._entries[-1].seq > seq:
            self._entries = [u for u in self._entries if u.seq <= seq]

    def any_older_than(self, seq: int) -> bool:
        """Is any store older than ``seq`` still in flight?  O(1): entries
        are program-ordered, so only the head can be the oldest."""
        return bool(self._entries) and self._entries[0].seq < seq

    def all_addresses_known_before(self, seq: int) -> bool:
        """True if every store older than ``seq`` has computed its address."""
        for store in self._entries:
            if store.seq >= seq:
                break
            if store.addr is None:
                return False
        return True

    def forward_source(self, addr: int, seq: int) -> DynInst | None:
        """Youngest store older than ``seq`` writing ``addr``, if any."""
        best: DynInst | None = None
        for store in self._entries:
            if store.seq >= seq:
                break
            if store.addr == addr:
                best = store
        return best


class LoadQueue:
    """Program-ordered window of in-flight loads."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.peak_occupancy = 0
        self._entries: list[DynInst] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, uop: DynInst) -> None:
        if self.full:
            raise RuntimeError("LQ overflow — dispatch must check capacity")
        self._entries.append(uop)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def remove(self, uop: DynInst) -> None:
        self._entries.remove(uop)

    def squash_younger_than(self, seq: int) -> None:
        if self._entries and self._entries[-1].seq > seq:
            self._entries = [u for u in self._entries if u.seq <= seq]

    def all_completed_before(self, seq: int) -> bool:
        """Has every load older than ``seq`` produced its value?  (The
        InvisiSpec exposure condition's load-load ordering check.)"""
        for u in self._entries:
            if u.seq >= seq:
                break
            if not u.completed:
                return False
        return True

    def any_older_unretired(self, seq: int) -> bool:
        """Is a load older than ``seq`` still in the window (not retired)?"""
        for u in self._entries:
            if u.seq >= seq:
                break
            if u.state is not UopState.RETIRED:
                return True
        return False

    def loads_of_line(self, line: int) -> list[DynInst]:
        """Executed loads that read ``line`` (consistency-check targets)."""
        return [
            u for u in self._entries
            if u.line == line and u.issue_cycle >= 0
        ]
