"""Dynamic instructions (uops) flowing through the pipeline.

A :class:`DynInst` is one fetched instance of a static instruction.  It
carries rename state, execution state, branch-prediction state, the load
state machine used by STT/SDO (events A/B/C/D of Section V-C2), and taint
bookkeeping.  ``seq`` is a globally unique, monotonically increasing fetch
sequence number — program order on the current speculative path — and is the
ordering every age comparison in the machine uses.
"""

from __future__ import annotations

import enum

from repro.common.config import MemLevel
from repro.frontend.branch_predictor import BranchPrediction
from repro.isa.instructions import Instruction
from repro.memory.hierarchy import OblLoadResponse


class UopState(enum.Enum):
    FETCHED = "fetched"  # in the fetch/decode buffer
    WAITING = "waiting"  # renamed, in the IQ, waiting for operands/policy
    ISSUED = "issued"  # executing (in an FU or the memory system)
    COMPLETED = "completed"  # result produced and forwarded
    RETIRED = "retired"


class OblState(enum.Enum):
    """Obl-Ld state machine (Section V-C2).

    Events: A = issued as Obl-Ld, B = all wait-buffer responses arrived,
    C = load became safe (address untainted), D = validation completed.
    """

    NONE = "none"  # not an oblivious load
    INFLIGHT = "inflight"  # A happened, waiting for responses
    DONE = "done"  # B happened


class DynInst:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq", "pc", "inst", "state", "squashed",
        # rename
        "src_pregs", "dest_preg", "old_dest_preg",
        # execution
        "issue_cycle", "complete_cycle", "result", "ready_cycle",
        "delayed_cycles",
        # branch state
        "prediction", "predicted_taken", "predicted_next_pc",
        "actual_taken", "actual_next_pc", "mispredicted",
        "resolved", "resolution_pending",
        # memory state
        "addr", "line", "value", "sq_forward_seq", "store_value",
        "translation_ok",
        # Obl-Ld / SDO state (the load-queue fields of Section VI-A)
        "obl_state", "obl_response", "safe", "needs_validation",
        "use_exposure", "validation_done", "validation_complete_cycle",
        "pending_squash", "obl_forwarded", "predicted_level", "actual_level",
        "invalidated_while_inflight",
        # SpecBox-style transparent speculation: this load's cache effects
        # live in the hierarchy's speculative buffer until commit/squash
        "spec_buffered",
        # FP SDO state
        "fp_predicted_fast", "fp_actually_slow",
        # taint
        "taint_root", "src_taint_root",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.state = UopState.FETCHED
        self.squashed = False

        self.src_pregs: tuple[int, ...] = ()
        self.dest_preg: int | None = None
        self.old_dest_preg: int | None = None

        self.issue_cycle = -1
        self.complete_cycle = -1
        self.result: int | float | None = None
        self.ready_cycle = -1  # when the uop entered the IQ
        self.delayed_cycles = 0  # cycles spent ready-but-delayed by policy

        self.prediction: BranchPrediction | None = None
        self.predicted_taken = False
        self.predicted_next_pc = pc + 1
        self.actual_taken = False
        self.actual_next_pc = pc + 1
        self.mispredicted = False
        self.resolved = False
        self.resolution_pending = False

        self.addr: int | None = None
        self.line: int | None = None
        self.value: int | float | None = None
        self.sq_forward_seq: int | None = None
        self.store_value: int | float | None = None
        self.translation_ok = True

        self.obl_state = OblState.NONE
        self.obl_response: OblLoadResponse | None = None
        self.safe = False
        self.needs_validation = False
        self.use_exposure = False
        self.validation_done = False
        self.validation_complete_cycle = -1
        self.pending_squash = False
        self.obl_forwarded = False
        self.predicted_level: MemLevel | None = None
        self.actual_level: MemLevel | None = None
        self.invalidated_while_inflight = False
        self.spec_buffered = False

        self.fp_predicted_fast = False
        self.fp_actually_slow = False

        self.taint_root: int | None = None
        self.src_taint_root: int | None = None

    # Convenience passthroughs -------------------------------------------------

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store

    @property
    def is_branch(self) -> bool:
        return self.inst.is_branch

    @property
    def is_fp_transmitter(self) -> bool:
        return self.inst.is_fp_transmitter

    @property
    def completed(self) -> bool:
        return self.state in (UopState.COMPLETED, UopState.RETIRED)

    def __repr__(self) -> str:
        return (
            f"DynInst(seq={self.seq}, pc={self.pc}, {self.inst.opcode.mnemonic},"
            f" state={self.state.value})"
        )
