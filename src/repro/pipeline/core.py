"""The execution-driven out-of-order core.

Stage order within a cycle: writeback events -> protection ``begin_cycle``
(untaint frontier; pending branch resolutions; Obl-Ld safe/C events) ->
commit -> issue -> dispatch/rename -> fetch.  Fetched wrong-path
instructions execute for real and are rolled back by a tail-first ROB walk.

The core is policy-free: every security decision is delegated to the
attached :class:`~repro.pipeline.protection.ProtectionScheme`.  What *is*
here is the Obl-Ld microarchitecture of Section VI-A — the load-queue state
machine over events A (issue), B (wait-buffer complete), C (safe) and
D (validation complete), including all three orderings of Section V-C2 and
the early-forwarding optimization — because those are pipeline structures,
not policy.

Committed state is checked against the functional golden model
(:class:`~repro.isa.iss.Interpreter`) instruction by instruction: any
divergence raises :class:`GoldenModelMismatch` immediately.

Observability: every cycle is attributed either to productive commit
(``core.commit_active_cycles``) or to exactly one stall reason keyed off
the ROB head (``core.stall.*`` — frontend starvation, operand waits,
execution/memory latency, STT delay, DO-variant wait, validation wait…),
so the stall counters sum exactly to the non-committing cycles.  Per-stage
occupancy integrals (``core.occ.*``) and structure peaks ride along.  An
optional :class:`~repro.analysis.trace.CycleTracer` can be attached as
``core.tracer``; when it is ``None`` (the default) the hooks cost one
attribute check per pipeline event.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.common.config import MachineConfig, MemLevel
from repro.common.stats import StatGroup
from repro.frontend.branch_predictor import TournamentPredictor
from repro.frontend.btb import BranchTargetBuffer
from repro.isa.instructions import Opcode, OpClass, is_subnormal
from repro.isa.iss import ArchState, Interpreter, execute_instruction, wrap64
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.observer import ResourceObserver
from repro.pipeline.lsq import LoadQueue, StoreQueue
from repro.pipeline.protection import (
    FP_DECISION_COUNTERS,
    LOAD_DECISION_COUNTERS,
    FpIssueAction,
    IssueDecision,
    LoadIssueAction,
    ProtectionScheme,
    UnsafeProtection,
)
from repro.pipeline.registers import PhysRegFile, RenameMap
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.uop import DynInst, OblState, UopState

#: Fixed execution latencies (cycles) by opcode class / opcode.
_FP_FAST_LATENCY = {
    Opcode.FADD: 3,
    Opcode.FSUB: 3,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.FSQRT: 15,
    Opcode.FLI: 1,
}
#: Extra cycles of the microcoded slow path taken on subnormal operands
#: (the operand-dependent timing of [5] the paper's FP example builds on).
FP_SLOW_EXTRA = 40
_SQ_FORWARD_LATENCY = 1

#: Every stall reason :meth:`Core._stall_reason` can attribute a
#: zero-commit cycle to — the full ``core.stall.*`` namespace.  Kept as a
#: literal tuple so the counter names are statically extractable (the
#: ``stat-key`` lint checker cross-checks this tuple against the literals
#: ``_stall_reason`` returns and against the golden-stats fixture), and so
#: ``_fold_cycle_accounting`` publishes only known reasons.
STALL_REASONS = (
    "frontend",
    "branch_hold",
    "exec",
    "stt_delay",
    "operands",
    "disambiguation",
    "issue_width",
    "do_variant_wait",
    "memory",
    "do_fail_wait",
    "do_safe_wait",
    "validation_wait",
    "commit_skew",
)


class GoldenModelMismatch(AssertionError):
    """The OoO core committed something the golden reference disagrees with."""


class GoldenReference:
    """Duck-typed protocol for the commit-time golden reference.

    Anything with an :class:`~repro.isa.iss.Interpreter`-shaped ``step()``
    — returning a record with ``seq``, ``pc``, ``opcode`` and ``result`` —
    can be injected into :class:`Core` via the ``golden`` argument.  The
    two in-tree implementations are the ISS itself (the default when
    ``check_golden`` is set: full functional re-execution) and
    ``repro.replay.TraceCursor`` (verification against a recorded
    architectural trace, no functional re-execution).
    """

    def step(self):  # pragma: no cover - protocol stub
        raise NotImplementedError


class DeadlockError(RuntimeError):
    """No instruction committed for an implausibly long time."""


@dataclass(frozen=True)
class HangDiagnostics:
    """Snapshot of a wedged machine, taken when the watchdog fires.

    Everything a post-mortem needs without a debugger attached: where the
    machine stopped, what the ROB head is and why it cannot commit, the
    LSQ/event-heap state that would have to change for progress, and which
    protection scheme was driving issue policy.
    """

    cycle: int
    last_commit_cycle: int
    hang_window: int
    instructions: int
    stall_reason: str | None
    rob_head: str | None
    rob_head_state: dict[str, object]
    rob_occupancy: int
    iq_occupancy: int
    lq_occupancy: int
    sq_occupancy: int
    lq_blocked: dict[str, object]
    event_heap_head: str | None
    event_heap_size: int
    fetch_state: dict[str, object]
    protection: str

    def as_dict(self) -> dict[str, object]:
        from dataclasses import asdict

        return asdict(self)

    def __str__(self) -> str:
        head = self.rob_head or "<empty ROB>"
        return (
            f"wedged at cycle {self.cycle} (no commit since "
            f"{self.last_commit_cycle}, window {self.hang_window}); "
            f"ROB head {head} blocked on {self.stall_reason!r}; "
            f"event heap head {self.event_heap_head or '<empty>'}; "
            f"protection {self.protection}"
        )


class SimulationHang(DeadlockError):
    """The forward-progress watchdog fired: no commit for ``hang_window``
    cycles.  Carries a :class:`HangDiagnostics` snapshot taken at the
    moment the watchdog tripped (``.diagnostics``), so a hung sweep cell
    reports *why* the machine wedged instead of silently spinning to the
    cycle budget.  Subclasses :class:`DeadlockError` for compatibility.
    """

    def __init__(self, diagnostics: HangDiagnostics) -> None:
        super().__init__(str(diagnostics))
        self.diagnostics = diagnostics


#: ``SimulationResult.termination`` values: a clean HALT commit, or which
#: budget ran out first.  Anything but ``halted`` means the workload did not
#: finish and derived figures are suspect.
TERMINATION_HALTED = "halted"
TERMINATION_MAX_CYCLES = "max_cycles"
TERMINATION_MAX_INSTRUCTIONS = "max_instructions"


@dataclass(frozen=True)
class SimulationResult:
    """Summary of one simulation run."""

    cycles: int
    instructions: int
    stats: dict[str, float]
    #: Why the run stopped: ``halted`` (clean), ``max_cycles`` or
    #: ``max_instructions`` (budget exhausted without a HALT commit).
    termination: str = TERMINATION_HALTED

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def halted(self) -> bool:
        return self.termination == TERMINATION_HALTED


class _ExecView:
    """ArchState-compatible adapter giving ``execute_instruction`` renamed
    operand values and a speculative memory view."""

    __slots__ = ("core", "uop", "result", "store_addr", "store_value", "load_addr")

    def __init__(self, core: "Core", uop: DynInst) -> None:
        self.core = core
        self.uop = uop
        self.result: int | float | None = None
        self.store_addr: int | None = None
        self.store_value: int | float | None = None
        self.load_addr: int | None = None

    def read_reg(self, reg: int) -> int | float:
        inst = self.uop.inst
        if reg == inst.rs1:
            return self.core.prf.value[self.uop.src_pregs[0]]
        if reg == inst.rs2:
            index = 1 if inst.rs1 is not None else 0
            return self.core.prf.value[self.uop.src_pregs[index]]
        raise KeyError(f"uop {self.uop} read unexpected register {reg}")

    def write_reg(self, reg: int, value: int | float) -> None:
        self.result = value

    def read_mem(self, addr: int) -> int | float:
        self.load_addr = addr
        return self.core.speculative_read(addr, self.uop.seq)

    def write_mem(self, addr: int, value: int | float) -> None:
        self.store_addr = addr
        self.store_value = value


class Core:
    """One out-of-order core attached to a memory hierarchy."""

    #: Event-driven fast-forward (on by default): when a cycle is provably
    #: idle, ``run()`` jumps straight to the next wake point, accruing the
    #: per-cycle accounting for the skipped span in closed form (see
    #: :meth:`_fast_forward`).  A plain attribute rather than a config knob
    #: because it must not affect results — the accrual is bit-identical to
    #: stepping by construction — so it has no business in the result-cache
    #: key.  Set to ``False`` (per instance, or on the class to cover
    #: ``execute()``-built cores) to force the naive one-``step()``-per-cycle
    #: loop; attaching a tracer disables skipping automatically (the tracer
    #: wants to see every cycle).
    fast_forward = True

    def __init__(
        self,
        program: Program,
        config: MachineConfig | None = None,
        protection: ProtectionScheme | None = None,
        hierarchy: MemoryHierarchy | None = None,
        observer: ResourceObserver | None = None,
        check_golden: bool = True,
        golden: "GoldenReference | None" = None,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.observer = observer or ResourceObserver(enabled=False)
        self.hierarchy = hierarchy or MemoryHierarchy(self.config, self.observer)
        self.protection = protection or UnsafeProtection()
        self.check_golden = check_golden

        core_cfg = self.config.core
        self.prf = PhysRegFile(core_cfg.phys_int_regs + core_cfg.phys_fp_regs)
        self.rename_map = RenameMap(self.prf)
        self.rob = ReorderBuffer(core_cfg.rob_entries)
        self.iq: list[DynInst] = []
        self.lq = LoadQueue(core_cfg.lq_entries)
        self.sq = StoreQueue(core_cfg.sq_entries)
        self.bpred = TournamentPredictor()
        self.btb = BranchTargetBuffer()

        self.committed = ArchState(memory=dict(program.initial_memory))
        # The golden reference is pluggable: by default the functional ISS
        # re-executes the program alongside the timing model, but any object
        # with an :class:`Interpreter`-shaped ``step()`` (seq/pc/opcode/
        # result) can stand in — e.g. a recorded architectural trace cursor
        # (``repro.replay.TraceCursor``), which verifies the commit stream
        # without re-running the functional model.
        if golden is None and check_golden:
            golden = Interpreter(program)
        self._golden = golden

        self.cycle = 0
        self.halted = False
        self._seq = 0
        self.fetch_pc = 0
        self._fetch_resume_cycle = 0
        self._fetch_halted = False
        self._decode_queue: deque[DynInst] = deque()
        self._decode_ready: dict[int, int] = {}  # seq -> ready cycle
        self._events: list[tuple[int, int, str, DynInst]] = []
        self._event_tiebreak = 0
        self._last_commit_cycle = 0
        self._hang_window = self.DEFAULT_HANG_WINDOW

        # Loads/FP ops under protection whose safe (C) event is pending.
        self._protected_watch: list[DynInst] = []
        # Branches whose resolution STT is delaying.
        self._pending_resolutions: list[DynInst] = []
        # Stores whose address is computed but whose data is still in flight.
        self._stores_awaiting_data: list[DynInst] = []

        self.stats = StatGroup("core")
        self._stall_stats = self.stats.group("stall")

        # Per-cycle accounting, kept in plain ints (folded into ``stats`` at
        # the end of ``run()``) so the always-on cost per cycle is a handful
        # of integer adds.
        self.commit_active_cycles = 0
        self._issue_active_cycles = 0
        self._dispatch_active_cycles = 0
        self._occ_rob = 0
        self._occ_iq = 0
        self._occ_lq = 0
        self._occ_sq = 0
        self._occ_decode = 0
        self._stall_counts: dict[str, int] = {}

        #: Optional :class:`~repro.analysis.trace.CycleTracer`; ``None`` by
        #: default — the per-event hook is a single ``is not None`` check.
        self.tracer = None

        # Fast-forward telemetry (plain attributes, deliberately not stats
        # counters: the stats dict must stay bit-identical between the
        # skipping and naive loops).
        self.ff_skipped_cycles = 0
        self.ff_windows = 0
        # Per-cycle ledger (reset at the top of every step): which of the
        # step's stat bumps would repeat identically each cycle while the
        # machine stays idle.  This is what lets _fast_forward replay a
        # skipped span exactly.
        self._cycle_activity = 0
        self._cycle_stall_reason: str | None = None
        self._cycle_fetch_stall: str | None = None
        self._cycle_dispatch_stall: str | None = None
        self._cycle_validation_stall = False
        self._cycle_delayed_loads: list[DynInst] = []
        self._cycle_delayed_fps: list[DynInst] = []

        self.protection.attach(self)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    #: Default forward-progress window: cycles without a commit before the
    #: watchdog raises :class:`SimulationHang`.  Far beyond any real stall
    #: (a DRAM round trip is ~hundreds of cycles), far below the cycle
    #: budget a wedged machine would otherwise silently spin to.
    DEFAULT_HANG_WINDOW = 50_000

    def run(
        self,
        max_instructions: int = 1_000_000,
        max_cycles: int = 10_000_000,
        hang_window: int | None = None,
    ) -> SimulationResult:
        """Simulate until HALT commits (or a limit is hit).

        ``hang_window`` configures the forward-progress watchdog: if no
        instruction commits for that many cycles the run aborts with a
        :class:`SimulationHang` carrying a :class:`HangDiagnostics`
        snapshot, instead of spinning to ``max_cycles``.  Exhausting a
        budget (``max_cycles``/``max_instructions``) without a HALT is a
        distinct, explicit outcome reported via
        ``SimulationResult.termination``.
        """
        if hang_window is None:
            hang_window = self.DEFAULT_HANG_WINDOW
        if hang_window <= 0:
            raise ValueError(f"hang_window must be positive, got {hang_window}")
        self._hang_window = hang_window
        target = self.stats["instructions"] + max_instructions
        skipping = (
            self.fast_forward
            and self.tracer is None
            and self.protection.supports_fast_forward
        )
        while not self.halted and self.cycle < max_cycles:
            idle = self.step()
            if self.stats["instructions"] >= target:
                break
            if idle and skipping:
                self._fast_forward(max_cycles)
            if self.cycle - self._last_commit_cycle > hang_window:
                raise SimulationHang(self._hang_diagnostics(hang_window))
        self._fold_cycle_accounting()
        merged = dict(self.stats.as_dict())
        merged.update(self.hierarchy.stats.as_dict())
        protection_stats = getattr(self.protection, "stats", None)
        if protection_stats is not None:
            merged.update(protection_stats.as_dict())
        merged.update(self.protection.decision_stats.as_dict(prefix="protection."))
        merged["core.bpred_mispredict_rate"] = self.bpred.mispredict_rate
        if self.halted:
            termination = TERMINATION_HALTED
        elif self.stats["instructions"] >= target:
            termination = TERMINATION_MAX_INSTRUCTIONS
        else:
            termination = TERMINATION_MAX_CYCLES
        return SimulationResult(
            cycles=self.cycle,
            instructions=self.stats["instructions"],
            stats=merged,
            termination=termination,
        )

    def _hang_diagnostics(self, hang_window: int) -> HangDiagnostics:
        """Snapshot everything a hang post-mortem needs (watchdog trip)."""
        head = self.rob.head
        head_state: dict[str, object] = {}
        if head is not None:
            head_state = {
                "seq": head.seq,
                "pc": head.pc,
                "opcode": head.inst.opcode.mnemonic,
                "state": head.state.value,
                "obl_state": head.obl_state.name,
                "safe": head.safe,
                "pending_squash": head.pending_squash,
                "needs_validation": head.needs_validation,
                "validation_done": head.validation_done,
                "delayed_cycles": head.delayed_cycles,
                "resolution_pending": head.resolution_pending,
            }
        lq_blocked: dict[str, object] = {
            "stores_awaiting_data": len(self._stores_awaiting_data),
            "protected_watch": len(self._protected_watch),
            "pending_resolutions": len(self._pending_resolutions),
        }
        heap_head = None
        if self._events:
            cycle, _, kind, uop = self._events[0]
            heap_head = f"{kind}@{cycle} for {uop!r}"
        return HangDiagnostics(
            cycle=self.cycle,
            last_commit_cycle=self._last_commit_cycle,
            hang_window=hang_window,
            instructions=int(self.stats["instructions"]),
            stall_reason=self._stall_reason(),
            rob_head=repr(head) if head is not None else None,
            rob_head_state=head_state,
            rob_occupancy=len(self.rob._entries),
            iq_occupancy=len(self.iq),
            lq_occupancy=len(self.lq._entries),
            sq_occupancy=len(self.sq._entries),
            lq_blocked=lq_blocked,
            event_heap_head=heap_head,
            event_heap_size=len(self._events),
            fetch_state={
                "fetch_pc": self.fetch_pc,
                "fetch_halted": self._fetch_halted,
                "fetch_resume_cycle": self._fetch_resume_cycle,
                "decode_queue": len(self._decode_queue),
            },
            protection=type(self.protection).__name__,
        )

    def step(self) -> bool:
        """Advance one cycle.

        Returns ``True`` when the cycle was *provably idle*: nothing
        committed, issued, dispatched or fetched, no event fired and no
        protected-uop state machine advanced.  The pipeline state an idle
        cycle reads is exactly the state it leaves behind, so every
        following cycle repeats its accounting verbatim until the next
        scheduled wake point — the fast-forward eligibility predicate
        (see :meth:`_fast_forward`).
        """
        self._cycle_activity = 0
        self._cycle_fetch_stall = None
        self._cycle_dispatch_stall = None
        self._cycle_validation_stall = False
        if self._cycle_delayed_loads:
            self._cycle_delayed_loads.clear()
        if self._cycle_delayed_fps:
            self._cycle_delayed_fps.clear()
        self._process_events()
        self.protection.begin_cycle(self.cycle)
        self._process_pending_resolutions()
        self._process_safe_transitions()
        committed = self._commit()
        issued = self._issue()
        dispatched = self._dispatch()
        fetched = self._fetch()
        # Per-cycle accounting (the observability layer's always-on half),
        # inlined and reading the queues' backing stores directly so the
        # per-cycle cost stays a handful of C-level operations.  Every cycle
        # is either *productive* (at least one commit) or charged to exactly
        # one ``core.stall.<reason>`` counter, so
        #
        #     cycles == commit_active_cycles + sum(core.stall.*)
        #
        # holds as an exact invariant (asserted in the test suite).  Stall
        # reasons land in a plain dict folded into stats after the run.
        self._occ_rob += len(self.rob._entries)
        self._occ_iq += len(self.iq)
        self._occ_lq += len(self.lq._entries)
        self._occ_sq += len(self.sq._entries)
        self._occ_decode += len(self._decode_queue)
        if committed:
            self.commit_active_cycles += 1
        else:
            reason = self._stall_reason()
            self._cycle_stall_reason = reason
            counts = self._stall_counts
            counts[reason] = counts.get(reason, 0) + 1
        if issued:
            self._issue_active_cycles += 1
        if dispatched:
            self._dispatch_active_cycles += 1
        self.cycle += 1
        return (
            committed == 0
            and issued == 0
            and dispatched == 0
            and fetched == 0
            and self._cycle_activity == 0
        )

    def _next_wake(self) -> int | None:
        """Earliest future cycle at which an idle machine can change state.

        Only three things un-idle a stalled pipeline: a scheduled event
        (writeback / DO response / branch resolve / validation), the fetch
        redirect penalty expiring, or the fetch-to-decode latency of the
        decode-queue head elapsing.  Everything else (safe transitions,
        pending resolutions, issue decisions) is a pure function of state
        those three produce.
        """
        # Called after step() already advanced ``self.cycle``, so a wake due
        # *this* cycle (== self.cycle) is a valid candidate — it yields a
        # zero-length span and simply suppresses the skip.
        wake = self._events[0][0] if self._events else None
        if not self._fetch_halted and self.cycle <= self._fetch_resume_cycle:
            if wake is None or self._fetch_resume_cycle < wake:
                wake = self._fetch_resume_cycle
        if self._decode_queue:
            ready = self._decode_ready.get(self._decode_queue[0].seq, 0)
            if ready >= self.cycle and (wake is None or ready < wake):
                wake = ready
        return wake

    def _fast_forward(self, max_cycles: int) -> None:
        """Jump from a provably idle cycle to the next wake point.

        The per-cycle accounting the naive loop would have produced over the
        skipped span is accrued in closed form: the occupancy integrals grow
        by ``span * current_length`` (queue contents are frozen while idle),
        the recorded single stall reason absorbs ``span`` cycles, and the
        step's repeatable stat bumps — fetch/dispatch structural stalls,
        the commit-stage validation stall, and per-delayed-uop STT delay
        counters (including the matching ``protection.decisions.*`` bump,
        which the issue stage counts once per retry) — are replayed
        ``span`` times.  The result is bit-identical to stepping.
        """
        wake = self._next_wake()
        # Never skip past where the naive loop would have stopped: the
        # run() watchdog fires once cycle reaches
        # _last_commit_cycle + hang_window + 1, and the while condition
        # stops at max_cycles.  With no wake point at all the machine is
        # wedged for good, so jumping straight to the deadline is exact too.
        target = min(self._last_commit_cycle + self._hang_window + 1, max_cycles)
        if wake is not None and wake < target:
            target = wake
        span = target - self.cycle
        if span <= 0:
            return
        self._occ_rob += span * len(self.rob._entries)
        self._occ_iq += span * len(self.iq)
        self._occ_lq += span * len(self.lq._entries)
        self._occ_sq += span * len(self.sq._entries)
        self._occ_decode += span * len(self._decode_queue)
        counts = self._stall_counts
        reason = self._cycle_stall_reason
        counts[reason] = counts.get(reason, 0) + span
        if self._cycle_fetch_stall is not None:
            self.stats.bump(self._cycle_fetch_stall, span)
        if self._cycle_dispatch_stall is not None:
            self.stats.bump(self._cycle_dispatch_stall, span)
        if self._cycle_validation_stall:
            self.stats.bump("validation_stall_cycles", span)
        decisions = self.protection.decision_stats
        for uop in self._cycle_delayed_loads:
            uop.delayed_cycles += span
            self.stats.bump("load_delay_cycles", span)
            decisions.bump(LOAD_DECISION_COUNTERS[LoadIssueAction.DELAY], span)
        for uop in self._cycle_delayed_fps:
            uop.delayed_cycles += span
            self.stats.bump("fp_delay_cycles", span)
            decisions.bump(FP_DECISION_COUNTERS[FpIssueAction.DELAY], span)
        self.cycle = target
        self.ff_skipped_cycles += span
        self.ff_windows += 1

    def _stall_reason(self) -> str:
        """Attribute a zero-commit cycle to the ROB head's blocking cause."""
        head = self.rob.head
        if head is None:
            return "frontend"
        if head.is_branch and head.completed:
            # Resolution scheduled (or held by STT's implicit-channel rule).
            return "branch_hold" if head.resolution_pending else "exec"
        if not head.completed:
            state = head.state
            if state is UopState.WAITING:
                if head.delayed_cycles > 0:
                    return "stt_delay"
                ready = self.prf.ready
                for preg in head.src_pregs:
                    if not ready[preg]:
                        return "operands"
                return "disambiguation" if head.is_load else "issue_width"
            if state is UopState.ISSUED:
                if head.obl_state is OblState.INFLIGHT:
                    return "do_variant_wait"
                return "memory" if head.is_load else "exec"
            return "frontend"  # FETCHED head cannot happen; be safe
        if head.is_load:
            if head.pending_squash:
                return "do_fail_wait"
            if head.obl_state is not OblState.NONE and not head.safe:
                return "do_safe_wait"
            if head.needs_validation and not head.validation_done:
                return "validation_wait"
        if head.fp_predicted_fast and not head.safe:
            return "do_safe_wait"
        # Head became ready after the commit stage already ran this cycle.
        return "commit_skew"

    def _fold_cycle_accounting(self) -> None:
        """Publish the plain-int per-cycle accumulators as stats counters."""
        for reason in STALL_REASONS:
            if reason in self._stall_counts:
                self._stall_stats.set(reason, self._stall_counts[reason])
        self.stats.set("commit_active_cycles", self.commit_active_cycles)
        self.stats.set("issue_active_cycles", self._issue_active_cycles)
        self.stats.set("dispatch_active_cycles", self._dispatch_active_cycles)
        occ = self.stats.group("occ")
        occ.set("rob", self._occ_rob)
        occ.set("iq", self._occ_iq)
        occ.set("lq", self._occ_lq)
        occ.set("sq", self._occ_sq)
        occ.set("decode", self._occ_decode)
        occ.set("rob_peak", self.rob.peak_occupancy)
        occ.set("lq_peak", self.lq.peak_occupancy)
        occ.set("sq_peak", self.sq.peak_occupancy)

    def speculative_read(self, addr: int, seq: int) -> int | float:
        """Memory view of a load at ``seq``: SQ forwarding over committed
        state (exact under single-core TSO)."""
        store = self.sq.forward_source(addr, seq)
        if store is not None and store.store_value is not None:
            return store.store_value
        return self.committed.read_mem(addr)

    def notify_invalidation(self, addr: int) -> None:
        """An external agent invalidated ``addr``'s line (coherence hook).

        Completed-but-uncommitted loads of that line may need a consistency
        squash; per Section V-C1 the squash is *delayed* until the load's
        address is untainted, and loads that performed a validation (or read
        from the L1) are covered by the normal path.
        """
        line = self.hierarchy.line_of(addr)
        self.hierarchy.external_invalidate(addr)
        for uop in self.lq.loads_of_line(line):
            uop.invalidated_while_inflight = True
            self.stats.bump("consistency_marks")

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    def _schedule(self, cycle: int, kind: str, uop: DynInst) -> None:
        self._event_tiebreak += 1
        heapq.heappush(self._events, (max(cycle, self.cycle + 1), self._event_tiebreak, kind, uop))

    def _process_events(self) -> None:
        while self._events and self._events[0][0] <= self.cycle:
            _, _, kind, uop = heapq.heappop(self._events)
            # Even a squashed uop's event counts as activity: popping it
            # changed the heap, so the next cycle is not a replay of this
            # one (conservative, and events are never idle-span wake-ups
            # anyway — _next_wake stops the skip at the heap head).
            self._cycle_activity += 1
            if uop.squashed:
                continue
            if kind == "complete":
                self._complete(uop)
            elif kind == "branch_resolve":
                self._resolve_branch(uop)
            elif kind == "obl_resp":
                self._obl_wait_buffer(uop)
            elif kind == "validation_done":
                self._validation_done(uop)
            else:  # pragma: no cover
                raise AssertionError(f"unknown event kind {kind}")

    # ------------------------------------------------------------------ #
    # Fetch
    # ------------------------------------------------------------------ #

    def _fetch(self) -> int:
        if self._fetch_halted or self.cycle < self._fetch_resume_cycle:
            return 0
        if len(self._decode_queue) >= 3 * self.config.core.fetch_width:
            self.stats.bump("fetch_buffer_full_cycles")
            self._cycle_fetch_stall = "fetch_buffer_full_cycles"
            return 0
        rooms = self.config.core.fetch_width
        fetched = 0
        while rooms > 0:
            if not 0 <= self.fetch_pc < len(self.program):
                # Ran off the program on a wrong path; wait for a redirect.
                self.stats.bump("fetch_off_end_cycles")
                if fetched == 0:
                    self._cycle_fetch_stall = "fetch_off_end_cycles"
                return fetched
            inst = self.program[self.fetch_pc]
            uop = DynInst(self._seq, self.fetch_pc, inst)
            self._seq += 1
            next_pc = self.fetch_pc + 1
            taken_break = False
            if inst.opcode is Opcode.JMP:
                uop.predicted_taken = True
                next_pc = inst.target if inst.target is not None else next_pc
                taken_break = True
            elif inst.is_conditional_branch:
                prediction = self.bpred.predict(self.fetch_pc)
                uop.prediction = prediction
                uop.predicted_taken = prediction.taken
                if prediction.taken:
                    next_pc = inst.target if inst.target is not None else next_pc
                    taken_break = True
            uop.predicted_next_pc = next_pc
            self._decode_queue.append(uop)
            self._decode_ready[uop.seq] = self.cycle + self.config.core.fetch_to_decode_latency
            self.stats.bump("fetched")
            if self.tracer is not None:
                self.tracer.on_fetch(uop, self.cycle)
            self.fetch_pc = next_pc
            rooms -= 1
            fetched += 1
            if inst.opcode is Opcode.HALT:
                # Stop fetching past a (possibly speculative) HALT; a squash
                # redirect un-sticks us if it was wrong-path.
                self._fetch_halted = True
                return fetched
            if taken_break:
                return fetched  # taken-branch fetch break
        return fetched

    # ------------------------------------------------------------------ #
    # Dispatch / rename
    # ------------------------------------------------------------------ #

    def _dispatch(self) -> int:
        width = self.config.core.decode_width
        dispatched = 0
        while width > 0 and self._decode_queue:
            uop = self._decode_queue[0]
            if self._decode_ready.get(uop.seq, 0) > self.cycle:
                break
            if self.rob.full:
                self.stats.bump("rob_full_stalls")
                self._cycle_dispatch_stall = "rob_full_stalls"
                break
            if uop.is_load and self.lq.full:
                self.stats.bump("lq_full_stalls")
                self._cycle_dispatch_stall = "lq_full_stalls"
                break
            if uop.is_store and self.sq.full:
                self.stats.bump("sq_full_stalls")
                self._cycle_dispatch_stall = "sq_full_stalls"
                break
            needs_iq = uop.inst.op_class is not OpClass.SYSTEM
            if needs_iq and len(self.iq) >= self.config.core.iq_entries:
                self.stats.bump("iq_full_stalls")
                self._cycle_dispatch_stall = "iq_full_stalls"
                break
            if not self._rename(uop):
                self.stats.bump("no_preg_stalls")
                self._cycle_dispatch_stall = "no_preg_stalls"
                break
            self._decode_queue.popleft()
            self._decode_ready.pop(uop.seq, None)
            self.rob.push(uop)
            uop.state = UopState.WAITING
            uop.ready_cycle = self.cycle
            if uop.is_load:
                self.lq.push(uop)
            if uop.is_store:
                self.sq.push(uop)
            if needs_iq:
                self.iq.append(uop)
            else:
                uop.state = UopState.COMPLETED
                uop.complete_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.on_dispatch(uop, self.cycle)
            dispatched += 1
            width -= 1
        return dispatched

    def _rename(self, uop: DynInst) -> bool:
        inst = uop.inst
        uop.src_pregs = tuple(self.rename_map.lookup(src) for src in inst.sources())
        if inst.rd is not None:
            renamed = self.rename_map.rename_dest(inst.rd)
            if renamed is None:
                return False
            uop.dest_preg, uop.old_dest_preg = renamed
        self.protection.on_rename(uop)
        return True

    # ------------------------------------------------------------------ #
    # Issue / execute
    # ------------------------------------------------------------------ #

    def _issue(self) -> int:
        slots = self.config.core.issue_width
        core_cfg = self.config.core
        fu_free = {
            OpClass.INT_ALU: core_cfg.int_alu_units,
            OpClass.INT_MUL: core_cfg.int_mul_units,
            OpClass.FP: core_cfg.fp_units,
            OpClass.BRANCH: core_cfg.int_alu_units,  # branches share ALUs
        }
        mem_slots = core_cfg.mem_ports
        self._capture_store_data()
        issued: list[DynInst] = []
        for uop in self.iq:
            if slots == 0:
                break
            op_class = uop.inst.op_class
            if op_class is OpClass.STORE:
                # Stores issue (compute their address) once the *base*
                # register is ready; the data may arrive later (split AGU).
                if not self.prf.ready[uop.src_pregs[1]]:
                    continue
            elif not all(self.prf.ready[p] for p in uop.src_pregs):
                continue
            if op_class in (OpClass.LOAD, OpClass.STORE):
                if mem_slots == 0:
                    continue
                if op_class is OpClass.LOAD and not self._try_issue_load(uop):
                    continue
                if op_class is OpClass.STORE:
                    self._issue_store(uop)
                mem_slots -= 1
            elif op_class is OpClass.FP and uop.is_fp_transmitter:
                if fu_free[OpClass.FP] == 0:
                    continue
                if not self._try_issue_fp_transmitter(uop):
                    continue
                fu_free[OpClass.FP] -= 1
            else:
                if fu_free.get(op_class, 0) == 0:
                    continue
                self._issue_simple(uop)
                fu_free[op_class] -= 1
            issued.append(uop)
            slots -= 1
        if issued:
            issued_set = set(id(u) for u in issued)
            self.iq = [u for u in self.iq if id(u) not in issued_set]
        return len(issued)

    def _execute(self, uop: DynInst) -> _ExecView:
        """Functionally execute ``uop`` with renamed operands."""
        view = _ExecView(self, uop)
        next_pc, taken, _, _ = execute_instruction(uop.inst, uop.pc, view)
        uop.actual_taken = taken
        uop.actual_next_pc = next_pc
        return view

    def _issue_simple(self, uop: DynInst) -> None:
        """ALU / FP-non-transmitter / branch issue."""
        view = self._execute(uop)
        uop.issue_cycle = self.cycle
        uop.state = UopState.ISSUED
        uop.result = view.result
        latency = self._latency_of(uop)
        if uop.is_branch:
            self._schedule(self.cycle + latency, "branch_resolve", uop)
            uop.result = None
            # Branches have no dest; completion coincides with resolution
            # scheduling (the squash, if any, happens at resolve time).
            uop.state = UopState.COMPLETED
            uop.complete_cycle = self.cycle + latency
        else:
            self._schedule(self.cycle + latency, "complete", uop)
        self.stats.bump("issued")
        if self.tracer is not None:
            self.tracer.on_issue(uop, self.cycle)

    def _latency_of(self, uop: DynInst) -> int:
        op = uop.inst.opcode
        op_class = uop.inst.op_class
        if op_class is OpClass.INT_ALU:
            return 1
        if op_class is OpClass.INT_MUL:
            return 3
        if op_class is OpClass.BRANCH:
            return 1
        if op_class is OpClass.FP:
            base = _FP_FAST_LATENCY[op]
            if self._fp_operands_slow(uop):
                return base + FP_SLOW_EXTRA
            return base
        raise AssertionError(f"no fixed latency for {op}")

    def _fp_operands_slow(self, uop: DynInst) -> bool:
        for preg in uop.src_pregs:
            value = self.prf.value[preg]
            if isinstance(value, float) and is_subnormal(value):
                return True
        return False

    def _issue_store(self, uop: DynInst) -> None:
        """Address generation; data is captured when its register is ready."""
        base = self.prf.value[uop.src_pregs[1]]
        uop.addr = wrap64(int(base) + int(uop.inst.imm))
        uop.line = self.hierarchy.line_of(uop.addr)
        uop.issue_cycle = self.cycle
        uop.state = UopState.ISSUED
        uop.actual_taken = False
        uop.actual_next_pc = uop.pc + 1
        data_preg = uop.src_pregs[0]
        if self.prf.ready[data_preg]:
            uop.store_value = self.prf.value[data_preg]
            self._schedule(self.cycle + 1, "complete", uop)
        else:
            self._stores_awaiting_data.append(uop)
        self.stats.bump("issued")
        if self.tracer is not None:
            self.tracer.on_issue(uop, self.cycle)

    def _capture_store_data(self) -> None:
        if not self._stores_awaiting_data:
            return
        still_waiting: list[DynInst] = []
        for uop in self._stores_awaiting_data:
            if uop.squashed:
                continue
            if self.prf.ready[uop.src_pregs[0]]:
                uop.store_value = self.prf.value[uop.src_pregs[0]]
                self._schedule(self.cycle + 1, "complete", uop)
                self._cycle_activity += 1
            else:
                still_waiting.append(uop)
        self._stores_awaiting_data = still_waiting

    # --- loads ----------------------------------------------------------- #

    def _try_issue_load(self, uop: DynInst) -> bool:
        """Attempt to issue a ready load; returns False to retry later."""
        # Conservative disambiguation: wait until all older stores have
        # computed their addresses.
        if not self.sq.all_addresses_known_before(uop.seq):
            return False
        # The address is computed once, before the policy decision (hardware
        # AGUs run regardless); the Perfect predictor's oracle needs it.
        # Source registers cannot change while the load waits, so delayed
        # retries reuse it.  The *value* is re-read at actual issue because
        # an older store may have drained in the meantime.
        if uop.addr is None:
            view = self._execute(uop)
            uop.addr = view.load_addr
            uop.line = self.hierarchy.line_of(view.load_addr)
        forward = self.sq.forward_source(uop.addr, uop.seq)
        if forward is not None and forward.store_value is None:
            # The matching store's data has not arrived; the forwarded value
            # would be wrong — retry next cycle.
            return False
        had_level = uop.predicted_level is not None
        decision = self.protection.load_issue_decision(uop)
        self.protection.decision_stats.bump(LOAD_DECISION_COUNTERS[decision.action])
        if decision.action is LoadIssueAction.DELAY:
            uop.delayed_cycles += 1
            self.stats.bump("load_delay_cycles")
            if not had_level and uop.predicted_level is not None:
                # A fresh location prediction was made this cycle (one-shot
                # predictor-accounting bumps inside the scheme): the cycle
                # is not a pure retry, so it must not be fast-forwarded.
                self._cycle_activity += 1
            else:
                self._cycle_delayed_loads.append(uop)
            return False
        uop.issue_cycle = self.cycle
        uop.state = UopState.ISSUED
        raw = self.speculative_read(uop.addr, uop.seq)
        # Match the ISS's load semantics (FLOAD coerces to float, LOAD to a
        # wrapped 64-bit integer) so the golden-model comparison stays exact.
        if uop.inst.opcode is Opcode.FLOAD:
            uop.value = float(raw)
        else:
            uop.value = wrap64(int(raw))
        getattr(self, self._LOAD_ISSUE_GATES[decision.action])(uop, forward, decision)
        self.stats.bump("issued")
        if self.tracer is not None:
            self.tracer.on_issue(uop, self.cycle)
        return True

    def _issue_load_normal(
        self, uop: DynInst, forward: DynInst | None, decision: IssueDecision
    ) -> None:
        if forward is not None:
            uop.sq_forward_seq = forward.seq
            uop.actual_level = None
            self.stats.bump("sq_forwards")
            self._schedule(self.cycle + _SQ_FORWARD_LATENCY, "complete", uop)
            return
        response = self.hierarchy.load(uop.addr, self.cycle)
        uop.actual_level = response.level
        if uop.predicted_level is not None:
            # This load carried a location prediction but issued normally —
            # the DRAM-prediction delay fallback.  Train the predictor with
            # what the standard access found (Section V-C3: "update the
            # predictor with the level that the validation finds data in").
            self._train_predictor(uop)
        self._schedule(response.complete_at, "complete", uop)

    def _issue_load_buffered(
        self, uop: DynInst, forward: DynInst | None, decision: IssueDecision
    ) -> None:
        """Transparent speculation (SpecBox-style): execute now with real
        timing, but park the line in the hierarchy's speculative buffer.
        The scheme's ``on_commit``/``on_squash`` hooks release or drop the
        buffered line, so cache state only ever reflects committed loads.
        """
        if forward is not None:
            uop.sq_forward_seq = forward.seq
            uop.actual_level = None
            self.stats.bump("sq_forwards")
            self._schedule(self.cycle + _SQ_FORWARD_LATENCY, "complete", uop)
            return
        response = self.hierarchy.speculative_load(uop.addr, self.cycle)
        uop.actual_level = response.level
        uop.spec_buffered = True
        self._schedule(response.complete_at, "complete", uop)

    def _issue_load_oblivious(
        self, uop: DynInst, forward: DynInst | None, decision: IssueDecision
    ) -> None:
        """Event A of Section V-C2: issue as an Obl-Ld.

        Per Section V-C3, on a store-queue hit the Obl-Ld still issues
        (uniform resource usage) but correct data is forwarded from the SQ
        once all responses return.
        """
        level = decision.predicted_level
        response = self.hierarchy.oblivious_load(uop.addr, level, self.cycle)
        uop.obl_state = OblState.INFLIGHT
        uop.obl_response = response
        uop.predicted_level = level
        uop.actual_level = response.actual_level
        if forward is not None:
            uop.sq_forward_seq = forward.seq
            self.stats.bump("sq_forwards")
        self.stats.bump("obl_issued")
        # Validation policy (Section VI-A field 3): exposure if the L1
        # lookup succeeds, or if the load cannot be reordered with older
        # memory operations (the InvisiSpec exposure condition, approximated
        # as "no older memory ops in flight at issue").
        oldest_mem = self._is_oldest_mem_op(uop)
        uop.use_exposure = oldest_mem or (
            response.success and response.actual_level is MemLevel.L1
        ) or forward is not None
        uop.needs_validation = not uop.use_exposure
        for _, respond_cycle, _ in response.responses:
            self._schedule(respond_cycle, "obl_resp", uop)
        self._protected_watch.append(uop)

    #: The issue gate (scheme-agnostic): every LoadIssueAction maps to one
    #: core-side issue path.  DELAY is handled before the gate (a delayed
    #: load never issues).  A new protection scheme plugs in by returning a
    #: different action — _try_issue_load itself never special-cases any
    #: scheme.  The table holds method *names*, resolved through the
    #: instance at dispatch time, so observers that wrap a gate on a Core
    #: instance (e.g. analysis probes) still intercept every call.
    _LOAD_ISSUE_GATES = {
        LoadIssueAction.NORMAL: "_issue_load_normal",
        LoadIssueAction.OBLIVIOUS: "_issue_load_oblivious",
        LoadIssueAction.BUFFERED: "_issue_load_buffered",
    }

    def _older_loads_done(self, uop: DynInst) -> bool:
        """The InvisiSpec exposure condition, evaluated at the safe point:
        with every older load already performed, this load's value can no
        longer violate TSO load-load ordering, so the validation can be
        replaced by an asynchronous exposure (Section V-C1)."""
        return self.lq.all_completed_before(uop.seq)

    def _is_oldest_mem_op(self, uop: DynInst) -> bool:
        return not self.lq.any_older_unretired(uop.seq) and not self.sq.any_older_than(
            uop.seq
        )

    def _obl_success_value(self, uop: DynInst) -> int | float:
        """What the wait buffer forwards on success."""
        if uop.sq_forward_seq is not None:
            return uop.value  # captured via speculative_read at issue
        return uop.value

    def _obl_wait_buffer(self, uop: DynInst) -> None:
        """A response reached the wait buffer (may be event B)."""
        if uop.obl_state is not OblState.INFLIGHT:
            return
        response = uop.obl_response
        # Early forwarding (Section V-C2): once safe, data may be forwarded
        # as soon as a success response (with all earlier responses) arrives.
        if (
            self.config.protection.early_forwarding
            and uop.safe
            and not uop.completed
            and uop.sq_forward_seq is None
        ):
            first_success = response.first_success_cycle()
            if first_success is not None and first_success <= self.cycle < response.complete_at:
                self.stats.bump("obl_early_forwards")
                self._obl_complete_success(uop)
                return
        if self.cycle < response.complete_at:
            return
        # --- Event B: all responses arrived ---
        uop.obl_state = OblState.DONE
        sq_hit = uop.sq_forward_seq is not None
        success = response.success or sq_hit
        if not uop.safe:
            # Case 1 ordering (B before C): forward unconditionally —
            # success or fail must look identical to the attacker.
            if success:
                self._obl_complete_success(uop)
            else:
                uop.pending_squash = True
                self.stats.bump("obl_fail_forwards")
                self._writeback(uop, self._poison_value(uop))
            return
        # C already happened (Case 2/3 orderings).
        if success:
            if not uop.completed:
                self._obl_complete_success(uop)
        elif uop.validation_complete_cycle < 0 and not uop.validation_done:
            # Fail, safe, and no validation in flight (the exposure condition
            # had been assumed at C): it is now safe to reveal the fail, so
            # issue the standard access that will supply the value.
            self._issue_validation(uop)
        # Otherwise: drop the failed result and let the already-issued
        # validation (event D) supply the value.

    def _poison_value(self, uop: DynInst) -> int | float:
        """The architecturally wrong value a failed DO variant forwards."""
        return 0.0 if uop.inst.opcode is Opcode.FLOAD else 0

    def _obl_complete_success(self, uop: DynInst) -> None:
        if uop.completed:
            return
        if uop.safe:
            # Success is public once the load is safe: train the location
            # predictor now (Section V-C3).
            self._train_predictor(uop)
        if uop.sq_forward_seq is None and uop.obl_response is not None:
            first_hit = next(
                (cycle for _, cycle, hit in uop.obl_response.responses if hit), None
            )
            if first_hit is not None:
                # Cycles the correct data sat in the wait buffer waiting for
                # deeper (imprecisely predicted) lookups to respond.
                self.stats.bump("imprecision_cycles", max(0, self.cycle - first_hit))
        self._writeback(uop, self._obl_success_value(uop))

    # ------------------------------------------------------------------ #
    # Completion / writeback
    # ------------------------------------------------------------------ #

    def _complete(self, uop: DynInst) -> None:
        if uop.is_load:
            self._writeback(uop, uop.value)
            return
        if uop.is_store:
            uop.state = UopState.COMPLETED
            uop.complete_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.on_complete(uop, self.cycle)
            return
        self._writeback(uop, uop.result)

    def _writeback(self, uop: DynInst, value: int | float | None) -> None:
        if uop.completed:
            return
        if uop.dest_preg is not None and value is not None:
            self.prf.mark_ready(uop.dest_preg, value)
        elif uop.dest_preg is not None:
            self.prf.mark_ready(uop.dest_preg, 0)
        uop.state = UopState.COMPLETED
        uop.complete_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.on_complete(uop, self.cycle)
        self.protection.on_complete(uop)

    # ------------------------------------------------------------------ #
    # Branch resolution
    # ------------------------------------------------------------------ #

    def _resolve_branch(self, uop: DynInst) -> None:
        if uop.resolved:
            return
        uop.mispredicted = uop.actual_next_pc != uop.predicted_next_pc
        if not self.protection.may_resolve_branch(uop):
            # Resolution-based implicit channel rule: hold the outcome until
            # the predicate untaints (Section III).
            if not uop.resolution_pending:
                uop.resolution_pending = True
                self._pending_resolutions.append(uop)
                self.stats.bump("delayed_resolutions")
                self.protection.decision_stats.bump("branch_hold")
            return
        self._apply_branch_resolution(uop)

    def _process_pending_resolutions(self) -> None:
        if not self._pending_resolutions:
            return
        still_pending: list[DynInst] = []
        for uop in self._pending_resolutions:
            if uop.squashed:
                continue
            if self.protection.may_resolve_branch(uop):
                self._cycle_activity += 1
                self._apply_branch_resolution(uop)
            else:
                still_pending.append(uop)
        self._pending_resolutions = still_pending

    def _apply_branch_resolution(self, uop: DynInst) -> None:
        uop.resolved = True
        uop.resolution_pending = False
        if uop.prediction is not None:
            self.bpred.update(uop.pc, uop.prediction, uop.actual_taken)
        if uop.inst.target is not None and uop.actual_taken:
            self.btb.install(uop.pc, uop.inst.target)
        self.protection.on_complete(uop)
        if uop.mispredicted:
            self.stats.bump("branch_squashes")
            if uop.prediction is not None:
                self.bpred.repair(uop.prediction, uop.actual_taken)
            self._squash_after(uop.seq, uop.actual_next_pc)

    # ------------------------------------------------------------------ #
    # Safe (event C) transitions for protected loads / FP ops
    # ------------------------------------------------------------------ #

    def _process_safe_transitions(self) -> None:
        if not self._protected_watch:
            return
        remaining: list[DynInst] = []
        for uop in self._protected_watch:
            if uop.squashed:
                continue
            if not uop.safe and self.protection.output_safe(uop):
                uop.safe = True
                self._cycle_activity += 1
                self._on_became_safe(uop)
            elif not uop.safe:
                remaining.append(uop)
        self._protected_watch = remaining

    def _on_became_safe(self, uop: DynInst) -> None:
        """Event C for Obl-Lds; re-execution point for failed Obl-FP ops."""
        if uop.is_fp_transmitter:
            self._fp_became_safe(uop)
            return
        response = uop.obl_response
        sq_hit = uop.sq_forward_seq is not None
        success = (response is not None and response.success) or sq_hit
        can_expose = (
            uop.use_exposure
            or uop.sq_forward_seq is not None
            or self._older_loads_done(uop)
        )
        if uop.obl_state is OblState.DONE:
            # Case 1 ordering: B happened before C.
            if success:
                self._train_predictor(uop)
                if can_expose:
                    self._issue_exposure(uop)
                else:
                    self._issue_validation(uop)
            else:
                # Fail is now public (Section V-C2 Case 1): squash the
                # dependents that consumed the poisoned value and re-issue
                # the load as a regular, safe load.
                self.stats.bump("obl_fail_squashes")
                self._train_predictor(uop)
                self.stats.bump("sdo_squashed_uops", self._reissue_load(uop))
        else:
            # Case 2/3 orderings: C before B.
            if sq_hit:
                # Data will come (correctly) from the store queue at B.
                uop.validation_done = True
            elif can_expose and success:
                # Exposure condition: fill asynchronously, wait for B's data.
                self._issue_exposure(uop)
            else:
                # Issue the validation now (Section V-C2 Case 2 [C]); it
                # both checks consistency and supplies the value on fail.
                self._issue_validation(uop)
            # With the safe bit set, a success response already in the wait
            # buffer can be forwarded immediately (early forwarding).
            if (
                self.config.protection.early_forwarding
                and not uop.completed
                and uop.sq_forward_seq is None
            ):
                first_success = response.first_success_cycle()
                if first_success is not None and first_success <= self.cycle:
                    self.stats.bump("obl_early_forwards")
                    self._obl_complete_success(uop)

    def _reissue_load(self, uop: DynInst) -> int:
        """Squash younger instructions and re-execute ``uop`` as a normal
        load (it is safe now, so STT imposes no further delay).  Returns the
        number of uops squashed."""
        discarded = self._squash_after(uop.seq, uop.pc + 1)
        uop.obl_state = OblState.NONE
        uop.obl_response = None
        uop.predicted_level = None  # already trained at the safe point
        uop.pending_squash = False
        uop.obl_forwarded = False
        uop.needs_validation = False
        uop.use_exposure = False
        uop.validation_done = False
        uop.validation_complete_cycle = -1
        uop.state = UopState.WAITING
        uop.issue_cycle = -1
        uop.complete_cycle = -1
        if uop.dest_preg is not None:
            self.prf.ready[uop.dest_preg] = False
        self.iq.append(uop)
        return discarded

    def _issue_validation(self, uop: DynInst) -> None:
        response = self.hierarchy.validate(uop.addr, self.cycle)
        uop.validation_complete_cycle = response.complete_at
        uop.actual_level = uop.actual_level or response.level
        self._schedule(response.complete_at, "validation_done", uop)
        self.stats.bump("validations_issued")

    def _issue_exposure(self, uop: DynInst) -> None:
        if uop.sq_forward_seq is None and uop.obl_response is not None:
            self.hierarchy.expose(uop.addr, self.cycle)
        uop.validation_done = True
        self.stats.bump("exposures_issued")

    def _validation_done(self, uop: DynInst) -> None:
        """Event D: the validation's standard access completed."""
        uop.validation_done = True
        current_value = self.speculative_read(uop.addr, uop.seq)
        if not uop.completed:
            # Case 3 ordering (D before B) or fail-waiting-for-validation:
            # the validation supplies the value.
            self._writeback(uop, current_value)
            self._train_predictor(uop, validated=True)
            return
        if current_value != uop.value or uop.invalidated_while_inflight:
            # Consistency violation detected by value comparison: squash
            # younger instructions and re-forward the fresh value.
            self.stats.bump("validation_mismatch_squashes")
            uop.value = current_value
            if uop.dest_preg is not None:
                self.prf.mark_ready(uop.dest_preg, current_value)
            uop.invalidated_while_inflight = False
            self.stats.bump(
                "sdo_squashed_uops", self._squash_after(uop.seq, uop.actual_next_pc)
            )

    def _train_predictor(self, uop: DynInst, validated: bool = False) -> None:
        if uop.sq_forward_seq is not None:
            return  # SQ-forwarded: the cache level is not ground truth
        if uop.predicted_level is None:
            return  # never predicted, or already trained once
        if uop.actual_level is not None:
            self.protection.on_load_outcome(uop, uop.actual_level)
            uop.predicted_level = None

    def _fp_became_safe(self, uop: DynInst) -> None:
        if not (uop.fp_predicted_fast and uop.fp_actually_slow):
            return
        # The static "normal operands" prediction failed: squash the
        # dependents and re-execute on the (now untainted) slow path.
        self.stats.bump("fp_fail_squashes")
        self.stats.bump("sdo_squashed_uops", self._squash_after(uop.seq, uop.pc + 1))
        uop.fp_predicted_fast = False
        uop.fp_actually_slow = False
        uop.state = UopState.WAITING
        uop.issue_cycle = -1
        uop.complete_cycle = -1
        if uop.dest_preg is not None:
            self.prf.ready[uop.dest_preg] = False
        self.iq.append(uop)

    def _try_issue_fp_transmitter(self, uop: DynInst) -> bool:
        action = self.protection.fp_issue_decision(uop)
        self.protection.decision_stats.bump(FP_DECISION_COUNTERS[action])
        if action is FpIssueAction.DELAY:
            uop.delayed_cycles += 1
            self.stats.bump("fp_delay_cycles")
            self._cycle_delayed_fps.append(uop)
            return False
        view = self._execute(uop)
        uop.issue_cycle = self.cycle
        uop.state = UopState.ISSUED
        uop.result = view.result
        slow = self._fp_operands_slow(uop)
        if action is FpIssueAction.PREDICT_FAST:
            uop.fp_predicted_fast = True
            uop.fp_actually_slow = slow
            latency = _FP_FAST_LATENCY[uop.inst.opcode]
            self.stats.bump("fp_predicted_fast")
            if slow:
                self.stats.bump("fp_subnormal_mispredicts")
            self._protected_watch.append(uop)
        else:
            latency = _FP_FAST_LATENCY[uop.inst.opcode] + (FP_SLOW_EXTRA if slow else 0)
        self._schedule(self.cycle + latency, "complete", uop)
        self.stats.bump("issued")
        if self.tracer is not None:
            self.tracer.on_issue(uop, self.cycle)
        return True

    # ------------------------------------------------------------------ #
    # Squash
    # ------------------------------------------------------------------ #

    def _squash_after(self, seq: int, refetch_pc: int) -> int:
        """Squash every uop with ``uop.seq > seq`` and refetch.

        Returns the number of in-flight uops discarded (used to attribute
        squash cost to its cause in the Figure 7 breakdown).
        """
        squashed = self.rob.squash_younger_than(seq)
        oldest_snapshot = None
        oldest_snapshot_seq = None
        for uop in squashed:  # youngest first
            uop.squashed = True
            uop.state = UopState.FETCHED
            if uop.dest_preg is not None:
                self.rename_map.rollback_dest(uop.inst.rd, uop.old_dest_preg)
                self.prf.free(uop.dest_preg)
            if uop.prediction is not None and (
                oldest_snapshot_seq is None or uop.seq < oldest_snapshot_seq
            ):
                oldest_snapshot = uop.prediction
                oldest_snapshot_seq = uop.seq
            self.protection.on_squash(uop)
            self.stats.bump("squashed_uops")
            if self.tracer is not None:
                self.tracer.on_squash(uop, self.cycle)
        for uop in self._decode_queue:
            if uop.seq > seq:
                uop.squashed = True
                self._decode_ready.pop(uop.seq, None)
                if self.tracer is not None:
                    self.tracer.on_squash(uop, self.cycle)
                if uop.prediction is not None and (
                    oldest_snapshot_seq is None or uop.seq < oldest_snapshot_seq
                ):
                    oldest_snapshot = uop.prediction
                    oldest_snapshot_seq = uop.seq
        self._decode_queue = deque(u for u in self._decode_queue if u.seq <= seq)
        if oldest_snapshot is not None:
            # Rewind speculative global history to before the oldest
            # squashed prediction.
            self.bpred.history = oldest_snapshot.history_snapshot
        self.iq = [u for u in self.iq if not u.squashed]
        self.lq.squash_younger_than(seq)
        self.sq.squash_younger_than(seq)
        self._protected_watch = [u for u in self._protected_watch if not u.squashed]
        self._pending_resolutions = [
            u for u in self._pending_resolutions if not u.squashed
        ]
        self.fetch_pc = refetch_pc
        self._fetch_halted = False
        self._fetch_resume_cycle = self.cycle + self.config.core.mispredict_penalty
        self.stats.bump("squashes")
        return len(squashed)

    # ------------------------------------------------------------------ #
    # Commit
    # ------------------------------------------------------------------ #

    def _commit(self) -> int:
        width = self.config.core.commit_width
        committed = 0
        while width > 0:
            head = self.rob.head
            if head is None:
                break
            if not self._commit_ready(head):
                break
            self.rob.pop_head()
            self._do_commit(head)
            committed += 1
            width -= 1
        return committed

    def _commit_ready(self, uop: DynInst) -> bool:
        if uop.is_branch:
            return uop.resolved
        if not uop.completed:
            return False
        if uop.is_load:
            if uop.pending_squash:
                # A failed Obl-Ld cannot commit; it will squash at its safe
                # point.  (It cannot be *correct* to commit a poisoned value.)
                return False
            if uop.obl_state is not OblState.NONE and not uop.safe:
                # An Obl-Ld retires only after its address untaints (its
                # success flag must be checked at the visibility point).
                return False
            if uop.needs_validation and not uop.validation_done:
                self.stats.bump("validation_stall_cycles")
                self._cycle_validation_stall = True
                return False
        if uop.fp_predicted_fast and not uop.safe:
            # A fast-predicted FP transmitter retires only once the static
            # "normal operands" prediction has been checked at untaint.
            return False
        return True

    def _do_commit(self, uop: DynInst) -> None:
        inst = uop.inst
        if uop.is_store:
            self.committed.write_mem(uop.addr, uop.store_value)
            self.hierarchy.store(uop.addr, self.cycle)
            self.sq.remove(uop)
        if uop.is_load:
            self.lq.remove(uop)
        if uop.old_dest_preg is not None and inst.rd != 0:
            self.prf.free(uop.old_dest_preg)
        elif uop.dest_preg is not None and inst.rd == 0:
            self.prf.free(uop.dest_preg)
        uop.state = UopState.RETIRED
        if self.tracer is not None:
            self.tracer.on_commit(uop, self.cycle)
        self.protection.on_commit(uop)
        self.stats.bump("instructions")
        self._last_commit_cycle = self.cycle
        if self._golden is not None:
            self._check_against_golden(uop)
        if inst.opcode is Opcode.HALT:
            self.halted = True

    def _check_against_golden(self, uop: DynInst) -> None:
        golden_record = self._golden.step()
        if golden_record.pc != uop.pc or golden_record.opcode != uop.inst.opcode:
            raise GoldenModelMismatch(
                f"commit stream diverged at #{golden_record.seq}: "
                f"golden pc={golden_record.pc} {golden_record.opcode}, "
                f"core pc={uop.pc} {uop.inst.opcode}"
            )
        core_result = uop.value if uop.is_load else uop.result
        if uop.is_store:
            core_result = None
        golden_result = golden_record.result
        if golden_result is not None and core_result != golden_result:
            if not (
                isinstance(golden_result, float)
                and isinstance(core_result, float)
                and golden_result != golden_result  # NaN == NaN case
                and core_result != core_result
            ):
                raise GoldenModelMismatch(
                    f"value diverged at pc={uop.pc} seq={uop.seq} "
                    f"({uop.inst.opcode}): core={core_result!r} "
                    f"golden={golden_result!r}"
                )
