"""The hook interface between the pipeline and a protection scheme.

The pipeline is substrate; Unsafe/STT/STT+SDO are policies over it.  A
:class:`ProtectionScheme` decides, per uop:

* how taint is assigned and propagated at rename,
* whether a ready load may issue normally, must be delayed (STT,
  delay-on-miss), should issue as an oblivious load at some predicted level
  (SDO), or should issue transparently into the speculative buffer
  (SpecBox-style label-based speculation),
* whether a ready FP transmitter may issue normally, must be delayed
  (STT{ld+fp}), or issues on the statically predicted fast path (SDO),
* whether a resolved branch may *apply* its resolution (STT's
  resolution-based implicit channel rule), and
* when a given taint root is safe (the untaint frontier).

``UnsafeProtection`` is the do-nothing baseline ("an unmodified insecure
processor", Table II).  STT lives in ``repro.stt``; SDO in ``repro.core``;
the competing published baselines (SpecBox-style transparent speculation,
delay-on-miss) in ``repro.baselines``.

The core consumes these decisions through its *issue gate*: every
:class:`LoadIssueAction` maps to exactly one core-side issue path
(``Core._LOAD_ISSUE_GATES``), so a new scheme only returns a different
action — it never patches core plumbing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.config import MemLevel
from repro.common.stats import StatGroup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.pipeline.core import Core
    from repro.pipeline.uop import DynInst


class LoadIssueAction(enum.Enum):
    NORMAL = "normal"
    OBLIVIOUS = "oblivious"
    DELAY = "delay"
    #: Execute now, but confine all cache-state side effects to the
    #: hierarchy's speculative buffer until the load commits (SpecBox-style
    #: transparent speculation).
    BUFFERED = "buffered"


class FpIssueAction(enum.Enum):
    NORMAL = "normal"
    PREDICT_FAST = "predict_fast"
    DELAY = "delay"


@dataclass(frozen=True)
class IssueDecision:
    action: LoadIssueAction
    predicted_level: MemLevel | None = None  # set iff action is OBLIVIOUS


#: Decision-counter names, precomputed so the hot path pays one dict lookup.
LOAD_DECISION_COUNTERS = {
    LoadIssueAction.NORMAL: "load_normal",
    LoadIssueAction.OBLIVIOUS: "load_oblivious",
    LoadIssueAction.DELAY: "load_delay",
    LoadIssueAction.BUFFERED: "load_buffered",
}
FP_DECISION_COUNTERS = {
    FpIssueAction.NORMAL: "fp_normal",
    FpIssueAction.PREDICT_FAST: "fp_predict_fast",
    FpIssueAction.DELAY: "fp_delay",
}


class ProtectionScheme:
    """Base class: the insecure machine.  Subclasses override the hooks.

    Every scheme carries ``decision_stats``, a counter bag the core bumps
    with the *outcome* of each policy consultation (one bump per issue
    attempt, so a load delayed for N cycles counts N ``load_delay``
    decisions — the same convention as ``core.load_delay_cycles``).  The
    counters surface in ``RunMetrics.stats`` under ``protection.decisions.*``
    and let the observability layer attribute issue-stage behaviour to the
    policy without re-deriving it from timing.
    """

    name = "Unsafe"

    #: Whether the scheme's hooks are pure functions of pipeline state:
    #: ``begin_cycle`` must be idempotent over a frozen pipeline and the
    #: issue decisions must not depend on the cycle number, so that a
    #: stalled cycle can be replayed in closed form by the core's
    #: fast-forward.  Every in-tree scheme qualifies (taint, frontiers and
    #: location predictions are all state-, not time-, driven); a scheme
    #: that keeps cycle-indexed state must set this ``False`` to force the
    #: naive per-cycle loop.
    supports_fast_forward = True

    def __init__(self) -> None:
        self.core: "Core | None" = None
        self.decision_stats = StatGroup("decisions")

    def attach(self, core: "Core") -> None:
        """Called once by the core after construction."""
        self.core = core

    # --- taint ---------------------------------------------------------- #

    def on_rename(self, uop: "DynInst") -> None:
        """Assign taint roots to ``uop`` and its destination register."""

    def is_root_safe(self, root_seq: int) -> bool:
        """Has root ``root_seq`` reached its visibility point?"""
        return True

    def sources_tainted(self, uop: "DynInst") -> bool:
        """Is any source operand of ``uop`` currently tainted?"""
        return False

    def output_safe(self, uop: "DynInst") -> bool:
        """Is ``uop``'s own output untainted (event C for loads)?"""
        return True

    # --- issue policy ---------------------------------------------------- #

    def load_issue_decision(self, uop: "DynInst") -> IssueDecision:
        return IssueDecision(LoadIssueAction.NORMAL)

    def fp_issue_decision(self, uop: "DynInst") -> FpIssueAction:
        return FpIssueAction.NORMAL

    # --- implicit channels ------------------------------------------------ #

    def may_resolve_branch(self, uop: "DynInst") -> bool:
        """May this branch's resolution (squash/predictor update) be applied
        now?  STT delays it until the predicate is untainted."""
        return True

    # --- lifecycle notifications ------------------------------------------ #

    def begin_cycle(self, cycle: int) -> None:
        """Called at the top of every cycle (frontier recomputation)."""

    def on_complete(self, uop: "DynInst") -> None:
        """A uop produced its result."""

    def on_commit(self, uop: "DynInst") -> None:
        """A uop retired."""

    def on_squash(self, uop: "DynInst") -> None:
        """A uop was squashed."""

    def on_load_outcome(self, uop: "DynInst", actual_level: MemLevel) -> None:
        """The true residence level of a protected load became known
        (location-predictor training hook, Section V-C3)."""


class UnsafeProtection(ProtectionScheme):
    """Explicit alias for readability at call sites."""
