"""The out-of-order core substrate.

An execution-driven speculative out-of-order pipeline: fetch (with the
``repro.frontend`` predictors), register renaming onto a physical register
file, out-of-order issue with functional-unit constraints, a load/store
queue with store-to-load forwarding, and in-order commit against the
functional golden model.

Wrong-path instructions *really execute* here — they read real (stale or
wrong) values, probe the real cache model, and are rolled back by walking
the ROB — because that transient execution is the attack surface the paper
defends.  Protection schemes (Unsafe / STT / STT+SDO) plug in through the
:class:`~repro.pipeline.protection.ProtectionScheme` interface; the pipeline
itself knows only *where* the hooks are, not what any scheme does.
"""

from repro.pipeline.uop import DynInst, UopState
from repro.pipeline.registers import PhysRegFile, RenameMap
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.lsq import LoadQueue, StoreQueue
from repro.pipeline.protection import (
    FpIssueAction,
    IssueDecision,
    LoadIssueAction,
    ProtectionScheme,
    UnsafeProtection,
)
from repro.pipeline.core import (
    Core,
    DeadlockError,
    HangDiagnostics,
    SimulationHang,
    SimulationResult,
)

__all__ = [
    "Core",
    "DeadlockError",
    "DynInst",
    "FpIssueAction",
    "HangDiagnostics",
    "IssueDecision",
    "LoadIssueAction",
    "LoadQueue",
    "PhysRegFile",
    "ProtectionScheme",
    "RenameMap",
    "ReorderBuffer",
    "SimulationHang",
    "SimulationResult",
    "StoreQueue",
    "UnsafeProtection",
    "UopState",
]
