"""Reorder buffer: the in-order spine of the machine."""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.pipeline.uop import DynInst


class ReorderBuffer:
    """A bounded FIFO of in-flight uops in fetch order."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.peak_occupancy = 0
        self._entries: deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def head(self) -> DynInst | None:
        return self._entries[0] if self._entries else None

    def push(self, uop: DynInst) -> None:
        if self.full:
            raise RuntimeError("ROB overflow — dispatch must check capacity")
        self._entries.append(uop)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def pop_head(self) -> DynInst:
        return self._entries.popleft()

    def squash_younger_than(self, seq: int) -> list[DynInst]:
        """Remove every uop with ``uop.seq > seq``, youngest first.

        Returning youngest-first is what lets the caller roll the rename map
        back correctly: undoing renames in reverse program order restores
        the mapping that existed at the squash point.
        """
        squashed: list[DynInst] = []
        # Entries are in fetch order, so the tail is the youngest: one
        # comparison settles the (common) nothing-to-squash case.
        if not self._entries or self._entries[-1].seq <= seq:
            return squashed
        while self._entries and self._entries[-1].seq > seq:
            squashed.append(self._entries.pop())
        return squashed

    def older_than(self, seq: int) -> Iterator[DynInst]:
        for uop in self._entries:
            if uop.seq >= seq:
                break
            yield uop
