"""Definition 2 (security) checking by trace comparison.

``Obl-f_i(args)`` and ``Obl-f_i(args')`` must create the same hardware
resource interference for any two operand assignments.  Rather than trust
the implementation, we record every resource event the memory system emits
(:class:`~repro.memory.observer.ResourceObserver`) and compare the full
traces.  A data-oblivious operation yields *identical* traces for different
addresses; the normal load path — by design — does not.
"""

from __future__ import annotations

from typing import Callable

from repro.common.config import MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.observer import ResourceObserver


def resource_trace_of(
    action: Callable[[MemoryHierarchy], None],
    machine: MachineConfig | None = None,
    prepare: Callable[[MemoryHierarchy], None] | None = None,
) -> tuple:
    """Run ``action`` against a fresh hierarchy and return the event trace.

    ``prepare`` (e.g. cache warming) runs before observation starts, so
    setup noise never reaches the comparison.
    """
    observer = ResourceObserver(enabled=False)
    hierarchy = MemoryHierarchy(machine or MachineConfig(), observer)
    if prepare is not None:
        prepare(hierarchy)
    observer.enabled = True
    action(hierarchy)
    return observer.normalized(base_cycle=0)


def traces_equal(trace_a: tuple, trace_b: tuple) -> bool:
    return trace_a == trace_b


def check_non_interference(
    make_action: Callable[[int], Callable[[MemoryHierarchy], None]],
    operands: list[int],
    machine: MachineConfig | None = None,
    prepare: Callable[[MemoryHierarchy], None] | None = None,
) -> tuple[bool, list[tuple]]:
    """Run the same operation over many operands; True if all traces match.

    Returns ``(ok, traces)`` so a failing test can diff the traces.
    """
    if len(operands) < 2:
        raise ValueError(
            "need at least 2 operands: non-interference is a statement about "
            f"*pairs* of operand assignments, got {len(operands)}"
        )
    traces = [
        resource_trace_of(make_action(operand), machine, prepare)
        for operand in operands
    ]
    first = traces[0]
    return all(t == first for t in traces[1:]), traces
