"""Definition 2 (security) checking by trace comparison.

``Obl-f_i(args)`` and ``Obl-f_i(args')`` must create the same hardware
resource interference for any two operand assignments.  Rather than trust
the implementation, we record every resource event the memory system emits
(:class:`~repro.memory.observer.ResourceObserver`) and compare the full
traces.  A data-oblivious operation yields *identical* traces for different
addresses; the normal load path — by design — does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.config import MachineConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.observer import ResourceObserver


def resource_trace_of(
    action: Callable[[MemoryHierarchy], None],
    machine: MachineConfig | None = None,
    prepare: Callable[[MemoryHierarchy], None] | None = None,
) -> tuple:
    """Run ``action`` against a fresh hierarchy and return the event trace.

    ``prepare`` (e.g. cache warming) runs before observation starts, so
    setup noise never reaches the comparison.
    """
    observer = ResourceObserver(enabled=False)
    hierarchy = MemoryHierarchy(machine or MachineConfig(), observer)
    if prepare is not None:
        prepare(hierarchy)
    observer.enabled = True
    action(hierarchy)
    return observer.normalized(base_cycle=0)


def traces_equal(trace_a: tuple, trace_b: tuple) -> bool:
    return trace_a == trace_b


@dataclass(frozen=True)
class TraceDivergence:
    """Where two resource traces first disagree.

    ``event_index`` is the position of the first differing event;
    ``baseline_event``/``divergent_event`` are the events at that position
    (``None`` past the end of the shorter trace).  ``operand_index`` says
    which operand's trace diverged from operand 0's.
    """

    operand_index: int
    event_index: int
    baseline_event: tuple | None
    divergent_event: tuple | None

    def describe(self) -> str:
        return (
            f"operand #{self.operand_index} diverges at event "
            f"{self.event_index}: {self.baseline_event} != "
            f"{self.divergent_event}"
        )


def first_divergence(trace_a: tuple, trace_b: tuple) -> int | None:
    """Index of the first event where the traces disagree, else ``None``.

    A strict prefix counts as diverging at the shorter trace's length.
    """
    for index, (event_a, event_b) in enumerate(zip(trace_a, trace_b)):
        if event_a != event_b:
            return index
    if len(trace_a) != len(trace_b):
        return min(len(trace_a), len(trace_b))
    return None


class NonInterferenceResult:
    """Outcome of a :func:`check_non_interference` run.

    Iterable as the historical ``(ok, traces)`` pair, so existing callers
    that unpack two values keep working; ``divergence`` additionally says
    *where* the first differing operand's trace splits from operand 0's.
    """

    def __init__(self, ok: bool, traces: list[tuple],
                 divergence: TraceDivergence | None):
        self.ok = ok
        self.traces = traces
        self.divergence = divergence

    def __iter__(self):
        return iter((self.ok, self.traces))

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"DIVERGED ({self.divergence.describe()})"
        return f"NonInterferenceResult({status}, {len(self.traces)} traces)"


def _find_divergence(traces: list[tuple]) -> TraceDivergence | None:
    first = traces[0]
    for operand_index, trace in enumerate(traces[1:], start=1):
        event_index = first_divergence(first, trace)
        if event_index is None:
            continue
        return TraceDivergence(
            operand_index=operand_index,
            event_index=event_index,
            baseline_event=(
                first[event_index] if event_index < len(first) else None
            ),
            divergent_event=(
                trace[event_index] if event_index < len(trace) else None
            ),
        )
    return None


def check_non_interference(
    make_action: Callable[[int], Callable[[MemoryHierarchy], None]],
    operands: list[int],
    machine: MachineConfig | None = None,
    prepare: Callable[[MemoryHierarchy], None] | None = None,
) -> NonInterferenceResult:
    """Run the same operation over many operands; ok if all traces match.

    Returns a :class:`NonInterferenceResult`, unpackable as the historical
    ``(ok, traces)`` pair; its ``divergence`` field pins the first trace
    index where an operand's trace splits from operand 0's.
    """
    if len(operands) < 2:
        raise ValueError(
            "need at least 2 operands: non-interference is a statement about "
            f"*pairs* of operand assignments, got {len(operands)}"
        )
    traces = [
        resource_trace_of(make_action(operand), machine, prepare)
        for operand in operands
    ]
    divergence = _find_divergence(traces)
    return NonInterferenceResult(divergence is None, traces, divergence)
