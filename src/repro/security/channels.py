"""The attacker's receiver: a flush+reload cache-timing probe.

The receiver shares the memory hierarchy with the victim (SameThread /
CrossCore models).  ``flush`` evicts a set of monitored lines; after the
victim runs, ``reload`` times an access to each line and classifies it as
HIT (the victim touched it) or MISS.  The timing threshold sits between the
L2 and L3 round-trip latencies, as in real flush+reload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class ProbeResult:
    addr: int
    latency: int
    hit: bool


class CacheTimingReceiver:
    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        config = hierarchy.config
        # Anything at L3-or-worse counts as "flushed"; private-cache hits
        # count as "the victim touched this".  The cut sits midway between
        # the L2 and L3 round trips so neither an L2 hit inflated by a few
        # cycles of contention nor a marginally fast L3 hit flips class.
        l2_round_trip = config.l1d.latency + config.l2.latency
        l3_round_trip = l2_round_trip + config.l3.latency
        self.threshold = (l2_round_trip + l3_round_trip) // 2

    def flush(self, addrs) -> None:
        """Evict the monitored lines from every cache level (clflush)."""
        for addr in addrs:
            self.hierarchy.external_invalidate(addr)

    def reload(self, addrs, now: int = 0) -> list[ProbeResult]:
        """Time an access to each monitored line."""
        results = []
        cursor = now
        for addr in addrs:
            response = self.hierarchy.load(addr, cursor)
            latency = response.complete_at - cursor
            results.append(ProbeResult(addr, latency, latency < self.threshold))
            cursor = response.complete_at + 1
        return results

    def recover_index(self, base: int, stride: int, count: int, now: int = 0) -> int | None:
        """Flush+reload decode: which of ``count`` slots did the victim touch?

        Returns the slot index with a hit, or None if no slot (or more than
        one ambiguous slot) hit — i.e. no leak observed.
        """
        line_size = self.hierarchy.config.line_size
        if stride < line_size:
            raise ValueError(
                f"probe stride {stride} is smaller than the {line_size}-byte "
                "cache line: adjacent slots would alias onto one line and the "
                "recovered index would be meaningless"
            )
        addrs = [base + stride * i for i in range(count)]
        hits = [r for r in self.reload(addrs, now) if r.hit]
        if len(hits) != 1:
            return None
        return (hits[0].addr - base) // stride
