"""Spectre Variant 1 penetration test (paper, Section VIII-A).

The victim is Figure 1 of the paper, compiled to the micro-ISA::

    for round in range(TRAIN_ROUNDS + 1):
        addr  = idx[round]           # attacker-controlled
        limit = *limit_ptr           # bounds — evicted, so the check is slow
        if addr < limit:             # mispredicted on the attack round
            val = A[addr]            # the access: reads the secret when oob
            tmp = B[val << 9]        # the transmitter

The first ``TRAIN_ROUNDS`` iterations use in-bounds indices (value 0),
training the branch predictor toward "in bounds".  The final round supplies
an out-of-bounds index that makes ``A[addr]`` alias the secret.  The bound
itself is flushed before the run so the bounds check resolves slowly,
giving the transient window.  The attacker then flush+reloads the probe
array ``B`` to recover ``val``.

* **Unsafe**: the transient transmitter fills ``B[secret << 9]`` — the
  receiver recovers the secret.
* **STT / STT+SDO**: the transmitter's operand is tainted; it is delayed
  (STT) or executed data-obliviously with no cache-state change (SDO) —
  the receiver sees nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import AttackModel, MachineConfig
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.security.channels import CacheTimingReceiver
from repro.sim.configs import EvaluatedConfig, config_by_name, make_protection

TRAIN_ROUNDS = 12
PROBE_STRIDE = 512  # val << 9
PROBE_SLOTS = 16

_IDX_BASE = 0x10000
_LIMIT_ADDR = 0x20000
_A_BASE = 0x40000
_B_BASE = 0x200000
_ARRAY_LEN = 8
_SECRET_ADDR = 0x80008  # "behind" the array; never legally readable


@dataclass(frozen=True)
class SpectreV1Result:
    secret: int
    recovered: int | None
    config: str

    @property
    def leaked(self) -> bool:
        return self.recovered == self.secret


def build_spectre_v1(secret: int):
    """Assemble the victim and its memory image; returns (program, probe_base)."""
    if not 1 <= secret < PROBE_SLOTS:
        raise ValueError(f"secret must be in 1..{PROBE_SLOTS - 1} to be distinguishable")
    memory: dict[int, int | float] = {_SECRET_ADDR: secret}
    # One bound per round, each on its own (cold) line: every bounds check
    # is a fresh miss, so it resolves slowly — the transient window.
    for round_index in range(TRAIN_ROUNDS + 1):
        memory[_LIMIT_ADDR + 64 * round_index] = _ARRAY_LEN
    for i in range(_ARRAY_LEN):
        memory[_A_BASE + 8 * i] = 0  # in-bounds values all decode to slot 0
    for round_index in range(TRAIN_ROUNDS):
        memory[_IDX_BASE + 8 * round_index] = round_index % _ARRAY_LEN
    # The malicious index: A_BASE + 8*idx == SECRET_ADDR.
    memory[_IDX_BASE + 8 * TRAIN_ROUNDS] = (_SECRET_ADDR - _A_BASE) // 8

    source = f"""
        li r1, 0
        li r2, {TRAIN_ROUNDS + 1}
        li r12, 3
        li r13, 9
        li r15, 6
    loop:
        shl r9, r1, r12
        load r4, r9, {_IDX_BASE}     ; attacker-controlled index
        shl r14, r1, r15
        load r6, r14, {_LIMIT_ADDR}  ; the bound (slow: per-round cold line)
        bge r4, r6, skip             ; bounds check — mispredicted last round
        shl r10, r4, r12
        load r7, r10, {_A_BASE}      ; access: reads the secret when oob
        shl r8, r7, r13
        load r11, r8, {_B_BASE}      ; transmit over the cache channel
        add r3, r3, r11
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    return assemble(source, memory, name="spectre_v1"), _B_BASE


def run_spectre_v1(
    config: EvaluatedConfig | str = "Unsafe",
    attack_model: AttackModel = AttackModel.SPECTRE,
    secret: int = 5,
    machine: MachineConfig | None = None,
) -> SpectreV1Result:
    """Run the attack end to end and report what the receiver recovered."""
    if isinstance(config, str):
        config = config_by_name(config)
    machine = machine or MachineConfig()
    machine = machine.with_protection(config.protection_config(attack_model))
    program, probe_base = build_spectre_v1(secret)
    hierarchy = MemoryHierarchy(machine)
    core = Core(
        program,
        config=machine,
        protection=make_protection(config, attack_model),
        hierarchy=hierarchy,
    )
    receiver = CacheTimingReceiver(hierarchy)

    # Attacker setup: flush the probe array, and warm the secret's line (the
    # victim used it legitimately just before — the usual Spectre setup, and
    # what makes the transient access fast enough to fit the window).
    probe_addrs = [probe_base + PROBE_STRIDE * v for v in range(PROBE_SLOTS)]
    receiver.flush(probe_addrs)
    hierarchy.warm([_SECRET_ADDR, _A_BASE])

    core.run(max_cycles=200_000)

    # Slot 0 is polluted by the training rounds (in-bounds values are 0);
    # scan slots 1.. for the transient leak.
    recovered = receiver.recover_index(
        probe_base + PROBE_STRIDE, PROBE_STRIDE, PROBE_SLOTS - 1, now=core.cycle
    )
    if recovered is not None:
        recovered += 1
    return SpectreV1Result(secret=secret, recovered=recovered, config=config.name)
