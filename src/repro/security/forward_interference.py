"""Forward speculative interference penetration test (arXiv 2109.10774).

"It's a Trap" observes that making speculation *invisible* (confining a
speculative load's cache-state side effects until commit, as SpecBox-style
schemes do) is not the same as making it *harmless*: a bound-to-be-squashed
speculative instruction still contends on shared resources with older
bound-to-commit instructions, so a transiently-read secret can modulate the
timing of the committed path itself — no flush+reload receiver required.

The victim here is a Spectre-v1 gadget with one extra, **older** committed
load per round (the probe), whose address is held back by a dependency
chain so that the *younger* gadget issues first.  The bounds check's limit
is derived from the *end* of the same chain, which both opens the transient
window (the branch cannot resolve before the chain drains) and makes the
probe the round's critical committed instruction — nothing slower hides
its latency::

    for round in range(TRAIN_ROUNDS + 1):
        p      = probe_ptr[round]      # per-round cold probe address
        p      = delay_chain(p)        # older probe issues ~CHAIN cycles late
        limit  = (p - p) + 8           # bound: ready only after the chain
        sink   = *p                    # OLDER probe, bound to commit
        addr   = idx[round]
        if addr < limit:               # mispredicted on the attack round
            val = A[addr]              # reads the secret when oob
            tmp = C[val * ROW_BYTES]   # YOUNGER, bound to squash: opens a
                                       # DRAM row the older probe shares

On the attack round the transient loads ``C_BASE + secret * ROW_BYTES``
(secret is 0 or 1); the attack round's probe address sits in the *same DRAM
row* as the ``secret == 1`` target but on a different cache line.  With
secret 1 the squashed load opens that row before the older probe reaches
DRAM, so the committed probe sees a row-buffer hit (60 cycles) instead of a
row miss (100): the total committed-path cycle count shifts even though the
committed instruction stream is bit-identical for both secrets.

What each scheme does with this:

* **Unsafe / SpecBox**: the speculative load reaches DRAM (normally, or via
  the transparent probe-only walk) and opens the row — **leak**.  This is
  the harness's point: cache-state invisibility does not close resource
  interference channels.
* **STT / SDO**: the transmitter's operand is tainted, so it is delayed to
  the visibility point (STT) or executed at an address-invariant predicted
  level that never reaches DRAM (SDO) — no row opens, no leak.
* **Delay-on-miss**: the transient misses the L1 and is delayed — the DRAM
  channel is closed.  (Its accepted residue, the speculative L1-*hit* fast
  path, is below this harness's resolution.)

Model caveat: this simulator prices each access *eagerly at issue*, so
younger→older contention on ports/banks of already-issued accesses cannot
be expressed; interference is carried by persistent shared state (here the
per-bank DRAM open-row registers) touched at the squashed load's issue.
That is the load-bearing subset of the attack — and the part invisible
speculation provably does not hide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import AttackModel, MachineConfig
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.observer import ResourceObserver
from repro.pipeline.core import Core
from repro.security.analyzer import TraceDivergence, _find_divergence
from repro.sim.configs import EvaluatedConfig, config_by_name, make_protection

TRAIN_ROUNDS = 12
#: Dependent no-op adds holding back the older probe's address, so the
#: younger transient issues (and touches DRAM) first.
CHAIN_LENGTH = 40
ROW_BYTES = 8192  # DramConfig.row_size default; one row per secret value

_IDX_BASE = 0x10000
_PTR_BASE = 0x30000
_A_BASE = 0x40000
_SECRET_ADDR = 0x80008  # "behind" the array; never legally readable
#: The interfering array: C_BASE is row-aligned so secret 0 stays in the
#: (training-warmed) row and secret 1 opens the next row over.
_C_BASE = 0x400000
#: Attack-round probe: same DRAM row as the secret-1 target, next line over.
_TARGET_PROBE = _C_BASE + ROW_BYTES + 64
#: Training-round probes: fresh cold rows well away from the target row, so
#: they never open it themselves.
_DECOY_BASE = 0x500000


@dataclass(frozen=True)
class InterferenceResult:
    """Committed-path timing for both secret values under one scheme."""

    config: str
    attack_model: AttackModel
    cycles_by_secret: dict[int, int]
    instructions_by_secret: dict[int, int]
    #: First resource-trace event where the secret-1 run splits from the
    #: secret-0 run (``None`` when the traces are identical).
    divergence: TraceDivergence | None = None

    @property
    def leaked(self) -> bool:
        """The committed stream is identical for both secrets (asserted by
        the runner), so *any* committed-cycle difference is interference."""
        cycles = set(self.cycles_by_secret.values())
        return len(cycles) > 1

    @property
    def delta_cycles(self) -> int:
        return self.cycles_by_secret[1] - self.cycles_by_secret[0]


def build_forward_interference(secret: int):
    """Assemble the victim and its memory image for one secret value."""
    if secret not in (0, 1):
        raise ValueError("secret selects a DRAM row; it must be 0 or 1")
    memory: dict[int, int | float] = {_SECRET_ADDR: secret}
    for round_index in range(TRAIN_ROUNDS + 1):
        # Per-round probe pointers: decoy rows while training, the target
        # row on the attack round.
        memory[_PTR_BASE + 8 * round_index] = (
            _TARGET_PROBE
            if round_index == TRAIN_ROUNDS
            else _DECOY_BASE + ROW_BYTES * round_index
        )
    for i in range(8):
        memory[_A_BASE + 8 * i] = 0  # in-bounds values keep the warm row
    for round_index in range(TRAIN_ROUNDS):
        memory[_IDX_BASE + 8 * round_index] = round_index % 8
    memory[_IDX_BASE + 8 * TRAIN_ROUNDS] = (_SECRET_ADDR - _A_BASE) // 8

    chain = "\n".join("        addi r17, r17, 0" for _ in range(CHAIN_LENGTH))
    source = f"""
        li r1, 0
        li r2, {TRAIN_ROUNDS + 1}
        li r12, 3
        li r13, 13                   ; val * ROW_BYTES
    loop:
        shl r9, r1, r12
        load r17, r9, {_PTR_BASE}    ; this round's probe pointer
{chain}
        sub r6, r17, r17             ; the bound: 0, ready after the chain
        addi r6, r6, 8               ; ... + array length
        load r5, r17, 0              ; older probe, bound to commit
        add r20, r20, r5
        load r4, r9, {_IDX_BASE}     ; attacker-controlled index
        bge r4, r6, skip             ; bounds check — mispredicted last round
        shl r10, r4, r12
        load r7, r10, {_A_BASE}      ; access: reads the secret when oob
        shl r8, r7, r13
        load r11, r8, {_C_BASE}      ; younger interferer, bound to squash
        add r3, r3, r11
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    return assemble(source, memory, name="forward_interference")


def _run_one(
    config: EvaluatedConfig, attack_model: AttackModel,
    secret: int, machine: MachineConfig,
):
    program = build_forward_interference(secret)
    observer = ResourceObserver(enabled=False)
    hierarchy = MemoryHierarchy(machine, observer)
    core = Core(
        program,
        config=machine,
        protection=make_protection(config, attack_model),
        hierarchy=hierarchy,
    )
    # The usual Spectre preamble: the victim touched the secret legitimately
    # just before, so the transient access chain is fast enough to fit the
    # window.  Nothing about the interference channel itself is warmed.
    hierarchy.warm([_SECRET_ADDR, _A_BASE])
    observer.enabled = True
    metrics = core.run(max_cycles=200_000)
    return metrics, observer.normalized(base_cycle=0)


def run_forward_interference(
    config: EvaluatedConfig | str = "Unsafe",
    attack_model: AttackModel = AttackModel.SPECTRE,
    machine: MachineConfig | None = None,
) -> InterferenceResult:
    """Run the victim with secret 0 and secret 1 and compare committed time.

    The committed instruction stream is secret-invariant by construction
    (the secret is only ever read transiently); the runner asserts the
    committed instruction counts agree, so a cycle difference can only be
    speculative interference on the committed path.
    """
    if isinstance(config, str):
        config = config_by_name(config)
    machine = machine or MachineConfig()
    machine = machine.with_protection(config.protection_config(attack_model))
    cycles: dict[int, int] = {}
    instructions: dict[int, int] = {}
    traces: list[tuple] = []
    for secret in (0, 1):
        metrics, trace = _run_one(config, attack_model, secret, machine)
        cycles[secret] = metrics.cycles
        instructions[secret] = metrics.instructions
        traces.append(trace)
    if instructions[0] != instructions[1]:
        raise RuntimeError(
            "committed stream is not secret-invariant "
            f"({instructions[0]} vs {instructions[1]} instructions); the "
            "harness victim is broken — a timing difference would not prove "
            "interference"
        )
    return InterferenceResult(
        config=config.name,
        attack_model=attack_model,
        cycles_by_secret=cycles,
        instructions_by_secret=instructions,
        divergence=_find_divergence(traces),
    )
