"""Security evaluation: attacks, receivers, and non-interference checks.

Three tools:

* :mod:`repro.security.spectre_v1` — the paper's penetration test: a
  Spectre-V1 bounds-check-bypass gadget plus a flush+reload receiver.  The
  Unsafe baseline must leak the secret; STT and every STT+SDO variant must
  not.
* :mod:`repro.security.channels` — the receiver side: a cache-timing
  (flush+reload) probe built on the same hierarchy model the victim uses.
* :mod:`repro.security.analyzer` — the Definition 2 checker: executes an
  operation with two different operand assignments and asserts the recorded
  resource-event traces are identical (non-interference).
"""

from repro.security.channels import CacheTimingReceiver
from repro.security.analyzer import (
    NonInterferenceResult,
    TraceDivergence,
    check_non_interference,
    first_divergence,
    resource_trace_of,
    traces_equal,
)
from repro.security.spectre_v1 import SpectreV1Result, build_spectre_v1, run_spectre_v1

__all__ = [
    "CacheTimingReceiver",
    "NonInterferenceResult",
    "SpectreV1Result",
    "TraceDivergence",
    "build_spectre_v1",
    "check_non_interference",
    "first_divergence",
    "resource_trace_of",
    "run_spectre_v1",
    "traces_equal",
]
