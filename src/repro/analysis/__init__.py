"""Post-run analysis instruments.

These attach to a :class:`~repro.pipeline.core.Core` *before* a run and
collect per-instruction observations that the aggregate counters can't
express:

* :class:`PipelineTimeline` — per-uop fetch/issue/complete/commit cycles
  with a text pipeline-diagram renderer (a poor man's Konata);
* :class:`TaintWindowProbe` — the distribution of taint-window lengths
  (cycles between a protected load becoming ready and becoming safe),
  which is the quantity STT's delay and SDO's prediction both race against;
* :class:`MlpProbe` — overlapped-miss statistics, the memory-level
  parallelism that STT's delays destroy and SDO recovers.

All instruments are observation-only: attaching them never changes timing
(verified by test).
"""

from repro.analysis.timeline import PipelineTimeline, UopRecord
from repro.analysis.probes import MlpProbe, TaintWindowProbe

__all__ = ["MlpProbe", "PipelineTimeline", "TaintWindowProbe", "UopRecord"]
