"""Post-run analysis instruments.

These attach to a :class:`~repro.pipeline.core.Core` *before* a run and
collect per-instruction observations that the aggregate counters can't
express:

* :class:`PipelineTimeline` — per-uop fetch/issue/complete/commit cycles
  with a text pipeline-diagram renderer (a poor man's Konata);
* :class:`TaintWindowProbe` — the distribution of taint-window lengths
  (cycles between a protected load becoming ready and becoming safe),
  which is the quantity STT's delay and SDO's prediction both race against;
* :class:`MlpProbe` — overlapped-miss statistics, the memory-level
  parallelism that STT's delays destroy and SDO recovers.

The observability layer proper lives beside them:

* :class:`CycleTracer` — the core-integrated cycle trace recorder with
  bounded memory, exporting JSONL and/or Konata pipeline-viewer logs;
* :class:`PhaseProfiler` — opt-in wall-time phase profiling surfaced as
  ``profile.*`` stats on :class:`~repro.sim.api.RunMetrics`.

All instruments are observation-only: attaching them never changes timing
(verified by test).
"""

from repro.analysis.profiler import PhaseProfiler
from repro.analysis.timeline import PipelineTimeline, UopRecord
from repro.analysis.probes import MlpProbe, TaintWindowProbe
from repro.analysis.trace import CycleTracer, TraceRecord, render_konata

__all__ = [
    "CycleTracer",
    "MlpProbe",
    "PhaseProfiler",
    "PipelineTimeline",
    "TaintWindowProbe",
    "TraceRecord",
    "UopRecord",
    "render_konata",
]
