"""Taint-window and memory-level-parallelism probes.

Both quantities explain *why* the Figure 6 numbers come out the way they
do:

* the **taint window** of a protected load is the time between "operands
  ready" and "operands safe".  STT stalls the load for the whole window;
  SDO hides it behind an oblivious lookup.  The distribution (collected by
  :class:`TaintWindowProbe`) shows how much there is to win.
* **MLP** is the number of long-latency loads in flight simultaneously.
  STT's delays serialize dependent-miss chains (MLP -> 1); SDO restores the
  overlap.  :class:`MlpProbe` samples in-flight miss counts per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MemLevel
from repro.common.stats import Histogram
from repro.pipeline.core import Core
from repro.pipeline.uop import DynInst


class TaintWindowProbe:
    """Histogram of (safe_cycle - ready_cycle) per protected load.

    Ready is approximated by the load's first delayed/issued cycle; safe is
    when the protection declared the output safe (event C) — for loads that
    were never tainted the window is 0 and is *not* recorded.
    """

    def __init__(self, core: Core) -> None:
        self.core = core
        self.windows = Histogram()
        self._ready_at: dict[int, int] = {}
        self._wrap(core)

    def _wrap(self, core: Core) -> None:
        from repro.pipeline.protection import LoadIssueAction

        original_decision = core.protection.load_issue_decision
        original_safe = core._on_became_safe

        def decision(uop: DynInst):
            result = original_decision(uop)
            if uop.seq not in self._ready_at:
                self._ready_at[uop.seq] = core.cycle
            if (
                result.action is not LoadIssueAction.DELAY
                and uop.delayed_cycles > 0
            ):
                # An STT-delayed load finally issuing: its window just closed.
                self.windows.add(max(0, core.cycle - self._ready_at[uop.seq]))
            return result

        def became_safe(uop: DynInst):
            ready = self._ready_at.get(uop.seq)
            if ready is not None and uop.is_load and uop.delayed_cycles == 0:
                # An Obl-Ld that issued immediately: window closes at C.
                self.windows.add(max(0, core.cycle - ready))
            original_safe(uop)

        core.protection.load_issue_decision = decision
        core._on_became_safe = became_safe

    @property
    def mean_window(self) -> float:
        return self.windows.mean

    def percentile(self, p: float) -> int:
        return self.windows.percentile(p)


@dataclass
class MlpSample:
    cycle: int
    outstanding: int


class MlpProbe:
    """Samples the number of outstanding long-latency loads per cycle.

    A load counts as outstanding between issue and completion if its
    residence was below the L1 (it is a "miss" from the core's viewpoint).
    """

    def __init__(self, core: Core, sample_every: int = 1) -> None:
        self.core = core
        self.sample_every = max(1, sample_every)
        self.samples: list[MlpSample] = []
        self._in_flight: dict[int, int] = {}  # seq -> issue cycle
        self._wrap(core)

    def _wrap(self, core: Core) -> None:
        original_normal = core._issue_load_normal
        original_obl = core._issue_load_oblivious
        original_buffered = core._issue_load_buffered
        original_writeback = core._writeback
        original_step = core.step

        def track(uop):
            if uop.actual_level is not None and uop.actual_level > MemLevel.L1:
                self._in_flight[uop.seq] = core.cycle

        def issue_normal(uop, forward, decision):
            original_normal(uop, forward, decision)
            track(uop)

        def issue_obl(uop, forward, decision):
            original_obl(uop, forward, decision)
            track(uop)

        def issue_buffered(uop, forward, decision):
            original_buffered(uop, forward, decision)
            track(uop)

        def writeback(uop, value):
            original_writeback(uop, value)
            self._in_flight.pop(uop.seq, None)

        def step():
            original_step()
            if core.cycle % self.sample_every == 0 and self._in_flight:
                self.samples.append(MlpSample(core.cycle, len(self._in_flight)))

        core._issue_load_normal = issue_normal
        core._issue_load_oblivious = issue_obl
        core._issue_load_buffered = issue_buffered
        core._writeback = writeback
        core.step = step

    @property
    def mean_mlp(self) -> float:
        """Average outstanding misses over cycles that had any."""
        if not self.samples:
            return 0.0
        return sum(s.outstanding for s in self.samples) / len(self.samples)

    @property
    def peak_mlp(self) -> int:
        return max((s.outstanding for s in self.samples), default=0)
