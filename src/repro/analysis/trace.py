"""Opt-in cycle-accurate pipeline trace recording.

A :class:`CycleTracer` attaches to a :class:`~repro.pipeline.core.Core` as
``core.tracer`` and receives one callback per pipeline event (fetch,
dispatch/rename, issue, complete, commit, squash).  Tracing is disabled by
default; when no tracer is attached the core pays one ``is not None`` check
per event.

Two export formats, selectable independently:

* **JSONL** — one JSON object per finished uop (``kind: "uop"``) plus a
  final ``kind: "summary"`` record carrying the run's stall-attribution
  counters, whose values sum exactly to the non-committing cycles.  Records
  stream to disk through a bounded buffer (windowed flush), so arbitrarily
  long traced runs hold at most ``buffer_capacity`` finished records in
  memory.
* **Konata** — the Kanata log format understood by the Konata pipeline
  viewer (https://github.com/shioyadan/Konata): stages F (fetch), Ds
  (dispatch/rename), Is (issue/execute), Cm (complete-to-retire), with
  squashed uops ending in a flush.  Konata export needs the whole record
  set at once, so it is capped at ``konata_limit`` uops; longer runs are
  truncated (and say so in the trace summary) rather than exhausting
  memory.

Without any output path the tracer degrades to an in-memory ring buffer of
the most recent ``buffer_capacity`` finished records — useful for tests and
interactive inspection via :meth:`CycleTracer.records`.

Attaching a tracer disables the core's event-driven fast-forward
(``Core.run`` checks ``tracer is None`` before skipping idle cycles): a
trace must contain every cycle, so traced runs always take the naive
one-step-per-cycle loop.  Results are bit-identical either way; only wall
time differs.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, TextIO

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.core import Core
    from repro.pipeline.uop import DynInst

#: Bump when the JSONL record layout changes incompatibly.
TRACE_SCHEMA = 1

#: Conventional file suffixes (both gitignored).
JSONL_SUFFIX = ".trace.jsonl"
KONATA_SUFFIX = ".konata"


@dataclass
class TraceRecord:
    """Milestone cycles of one dynamic instruction (-1 = never reached)."""

    seq: int
    pc: int
    op: str
    fetch: int = -1
    dispatch: int = -1
    issue: int = -1
    complete: int = -1
    commit: int = -1
    squash: int = -1
    oblivious: bool = False
    predicted_level: str | None = None
    delayed_cycles: int = 0

    @property
    def retired(self) -> bool:
        return self.commit >= 0

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {"kind": "uop"}
        payload.update(asdict(self))
        if self.predicted_level is None:
            del payload["predicted_level"]
        return payload


class CycleTracer:
    """Records per-uop milestone cycles; exports JSONL and/or Konata.

    Attach with :meth:`attach` *before* ``core.run()`` and call
    :meth:`close` afterwards (``execute()`` does both when a
    :class:`~repro.sim.api.Instrumentation` requests tracing).
    """

    def __init__(
        self,
        jsonl_path: str | Path | None = None,
        konata_path: str | Path | None = None,
        *,
        buffer_capacity: int = 4096,
        konata_limit: int = 200_000,
    ) -> None:
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be positive")
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self.konata_path = Path(konata_path) if konata_path is not None else None
        self.buffer_capacity = buffer_capacity
        self.konata_limit = konata_limit
        self.core: "Core | None" = None
        self._live: dict[int, TraceRecord] = {}
        # With a JSONL sink the buffer is flushed when full; without one it
        # is a true ring buffer of the most recent finished records.
        self._done: deque[TraceRecord] = (
            deque() if self.jsonl_path is not None else deque(maxlen=buffer_capacity)
        )
        self._jsonl_fh: TextIO | None = (
            self.jsonl_path.open("w") if self.jsonl_path is not None else None
        )
        self._konata: list[TraceRecord] = []
        self._konata_truncated = 0
        self._recorded = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Core hooks (called from the pipeline's hot path)
    # ------------------------------------------------------------------ #

    def attach(self, core: "Core") -> "CycleTracer":
        """Attach to ``core``.

        Side effect: the core's idle-cycle fast-forward turns off for the
        whole run — every cycle must reach the trace.
        """
        if core.tracer is not None and core.tracer is not self:
            raise RuntimeError("core already has a tracer attached")
        core.tracer = self
        self.core = core
        return self

    def on_fetch(self, uop: "DynInst", cycle: int) -> None:
        self._live[uop.seq] = TraceRecord(
            seq=uop.seq, pc=uop.pc, op=str(uop.inst), fetch=cycle
        )

    def on_dispatch(self, uop: "DynInst", cycle: int) -> None:
        record = self._live.get(uop.seq)
        if record is not None:
            record.dispatch = cycle

    def on_issue(self, uop: "DynInst", cycle: int) -> None:
        record = self._live.get(uop.seq)
        if record is None:
            return
        record.issue = cycle  # a re-issued uop keeps its final issue cycle
        record.delayed_cycles = uop.delayed_cycles
        if uop.predicted_level is not None:
            record.oblivious = True
            record.predicted_level = uop.predicted_level.name
        if uop.fp_predicted_fast:
            record.oblivious = True

    def on_complete(self, uop: "DynInst", cycle: int) -> None:
        record = self._live.get(uop.seq)
        if record is not None:
            record.complete = cycle

    def on_commit(self, uop: "DynInst", cycle: int) -> None:
        record = self._live.pop(uop.seq, None)
        if record is not None:
            self._backfill_complete(record, uop)
            record.commit = cycle
            self._finish(record)

    def on_squash(self, uop: "DynInst", cycle: int) -> None:
        record = self._live.pop(uop.seq, None)
        if record is not None:
            self._backfill_complete(record, uop)
            record.squash = cycle
            self._finish(record)

    @staticmethod
    def _backfill_complete(record: TraceRecord, uop: "DynInst") -> None:
        # Branches and IQ-bypassing uops complete outside the writeback
        # path (no on_complete callback); their completion cycle is still
        # stamped on the uop itself.
        if record.complete < 0:
            record.complete = getattr(uop, "complete_cycle", -1)

    # ------------------------------------------------------------------ #
    # Buffering / flushing
    # ------------------------------------------------------------------ #

    def _finish(self, record: TraceRecord) -> None:
        self._recorded += 1
        if self.konata_path is not None:
            if len(self._konata) < self.konata_limit:
                self._konata.append(record)
            else:
                self._konata_truncated += 1
        self._done.append(record)
        if self._jsonl_fh is not None and len(self._done) >= self.buffer_capacity:
            self._flush_window()

    def _flush_window(self) -> None:
        if self._jsonl_fh is None:
            return
        while self._done:
            self._jsonl_fh.write(
                json.dumps(self._done.popleft().to_dict(), sort_keys=True) + "\n"
            )

    def records(self) -> list[TraceRecord]:
        """The finished records currently buffered in memory (most recent
        ``buffer_capacity`` when no JSONL sink is draining the buffer)."""
        return list(self._done)

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #

    def summary(self) -> dict[str, object]:
        """The trailing JSONL record: totals plus stall attribution."""
        core = self.core
        stall: dict[str, int] = {}
        cycles = instructions = commit_active = 0
        if core is not None:
            prefix = "stall."
            stall = {
                key[len(prefix):]: int(value)
                for key, value in core.stats.group("stall").as_dict().items()
                if key.startswith(prefix)
            }
            cycles = core.cycle
            instructions = core.stats["instructions"]
            commit_active = core.commit_active_cycles
        return {
            "kind": "summary",
            "schema": TRACE_SCHEMA,
            "cycles": cycles,
            "instructions": instructions,
            "commit_active_cycles": commit_active,
            "stall": stall,
            "uops_recorded": self._recorded,
            "in_flight_at_close": len(self._live),
            "konata_truncated": self._konata_truncated,
        }

    def close(self) -> dict[str, object]:
        """Flush everything, write the Konata file, return the summary."""
        if self._closed:
            return self.summary()
        self._closed = True
        # Uops still in flight at the end of the run never finished; record
        # them as-is so the trace accounts for every fetched instruction.
        for seq in sorted(self._live):
            self._finish(self._live[seq])
        self._live.clear()
        summary = self.summary()
        if self._jsonl_fh is not None:
            self._flush_window()
            self._jsonl_fh.write(json.dumps(summary, sort_keys=True) + "\n")
            self._jsonl_fh.close()
            self._jsonl_fh = None
        if self.konata_path is not None:
            self.konata_path.write_text(render_konata(self._konata))
            self._konata = []
        if self.core is not None and self.core.tracer is self:
            self.core.tracer = None
        return summary

    def __enter__(self) -> "CycleTracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def render_konata(records: list[TraceRecord]) -> str:
    """Render finished trace records as a Kanata 0004 log.

    Stage lanes: F (fetch), Ds (dispatch/rename), Is (issue/execute), Cm
    (complete-to-retire).  Committed uops end with a retire record, squashed
    ones with a flush record; uops that died in the decode queue show only
    their F stage.
    """
    records = sorted((r for r in records if r.fetch >= 0), key=lambda r: r.seq)
    if not records:
        return "Kanata\t0004\nC=\t0\n"
    # Collect (cycle, order, line) events, then replay them cycle by cycle.
    events: list[tuple[int, int, str]] = []
    retire_id = 0
    for uid, record in enumerate(records):
        events.append((record.fetch, 0, f"I\t{uid}\t{record.seq}\t0"))
        events.append((record.fetch, 1, f"L\t{uid}\t0\t{record.pc}: {record.op}"))
        events.append((record.fetch, 2, f"S\t{uid}\t0\tF"))
        stages = [(record.dispatch, "Ds"), (record.issue, "Is"), (record.complete, "Cm")]
        last = record.fetch
        for cycle, stage in stages:
            if cycle >= last >= 0 and cycle >= 0:
                events.append((cycle, 2, f"S\t{uid}\t0\t{stage}"))
                last = cycle
        if record.commit >= 0:
            retire_id += 1
            events.append((max(record.commit, last), 3, f"R\t{uid}\t{retire_id}\t0"))
        else:
            flush_at = record.squash if record.squash >= last else last
            retire_id += 1
            events.append((flush_at, 3, f"R\t{uid}\t{retire_id}\t1"))
    events.sort(key=lambda item: (item[0], item[1]))
    first_cycle = events[0][0]
    lines = ["Kanata\t0004", f"C=\t{first_cycle}"]
    current = first_cycle
    for cycle, _, line in events:
        if cycle > current:
            lines.append(f"C\t{cycle - current}")
            current = cycle
        lines.append(line)
    return "\n".join(lines) + "\n"
