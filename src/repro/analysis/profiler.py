"""Lightweight wall-time phase profiling for simulation runs.

A :class:`PhaseProfiler` accumulates ``time.perf_counter`` deltas per named
phase (build / warm / simulate / finalize in ``execute()``).  It is opt-in:
``execute()`` only creates one when the request's
:class:`~repro.sim.api.Instrumentation` asks for profiling, so ordinary
runs pay nothing.

The resulting numbers are merged into ``RunMetrics.stats`` under the
``profile.`` prefix — wall seconds per phase plus derived throughput
(kilo-cycles and kilo-instructions simulated per wall-second).  Profile
stats are deliberately excluded from cached results and golden fixtures:
they measure the host machine, not the simulated one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class PhaseProfiler:
    """Accumulates wall time per named phase."""

    def __init__(self) -> None:
        self.phase_seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def as_stats(self, cycles: int = 0, instructions: int = 0) -> dict[str, float]:
        """Flatten to ``profile.*`` keys for merging into ``RunMetrics.stats``."""
        stats: dict[str, float] = {}
        for name, seconds in sorted(self.phase_seconds.items()):
            stats[f"profile.{name}_s"] = round(seconds, 6)
        total = self.total_seconds
        stats["profile.total_s"] = round(total, 6)
        if total > 0:
            stats["profile.kcycles_per_sec"] = round(cycles / total / 1e3, 3)
            stats["profile.kinstr_per_sec"] = round(instructions / total / 1e3, 3)
        return stats
