"""Per-uop pipeline timeline recording and rendering.

Wraps a core's dispatch/issue/writeback/commit paths with observation-only
hooks and renders a text pipeline diagram::

    seq   pc  instruction           F----D--I=====C......R
    12     4  load r6 r10 4194304   |39   43 45    58     71

Legend: F fetch, D dispatch/rename, I issue, C complete, R retire; a
``squashed`` column marks uops that never retired.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.core import Core
from repro.pipeline.uop import DynInst


@dataclass
class UopRecord:
    seq: int
    pc: int
    text: str
    fetched: int = -1
    dispatched: int = -1
    issued: int = -1
    completed: int = -1
    retired: int = -1
    squashed: bool = False
    was_oblivious: bool = False
    was_delayed_cycles: int = 0

    @property
    def latency(self) -> int | None:
        if self.retired < 0 or self.fetched < 0:
            return None
        return self.retired - self.fetched


class PipelineTimeline:
    """Attach before ``core.run()``; read ``records`` afterwards."""

    def __init__(self, core: Core, capacity: int = 100_000) -> None:
        self.core = core
        self.capacity = capacity
        self.records: dict[int, UopRecord] = {}
        self._wrap(core)

    def _record_for(self, uop: DynInst) -> UopRecord | None:
        record = self.records.get(uop.seq)
        if record is None:
            if len(self.records) >= self.capacity:
                return None
            record = UopRecord(uop.seq, uop.pc, str(uop.inst))
            record.fetched = self.core.cycle
            self.records[uop.seq] = record
        return record

    def _wrap(self, core: Core) -> None:
        original_rename = core._rename
        original_writeback = core._writeback
        original_commit = core._do_commit
        original_squash = core._squash_after

        def rename(uop):
            ok = original_rename(uop)
            if ok:
                record = self._record_for(uop)
                if record:
                    record.dispatched = core.cycle
            return ok

        def writeback(uop, value):
            record = self.records.get(uop.seq)
            already = uop.completed
            original_writeback(uop, value)
            if record and not already:
                record.completed = core.cycle
                if uop.issue_cycle >= 0:
                    record.issued = uop.issue_cycle
                record.was_oblivious = uop.obl_response is not None
                record.was_delayed_cycles = uop.delayed_cycles

        def commit(uop):
            original_commit(uop)
            record = self.records.get(uop.seq)
            if record:
                record.retired = core.cycle
                if uop.issue_cycle >= 0:
                    record.issued = uop.issue_cycle

        def squash(seq, refetch_pc):
            count = original_squash(seq, refetch_pc)
            for record_seq, record in self.records.items():
                if record_seq > seq and record.retired < 0:
                    record.squashed = True
            return count

        core._rename = rename
        core._writeback = writeback
        core._do_commit = commit
        core._squash_after = squash

    # ------------------------------------------------------------------ #

    def retired_records(self) -> list[UopRecord]:
        return sorted(
            (r for r in self.records.values() if r.retired >= 0),
            key=lambda r: r.seq,
        )

    def render(self, first: int = 0, count: int = 32, width: int = 64) -> str:
        """Text pipeline diagram for ``count`` uops starting at index
        ``first`` of the retired stream."""
        records = self.retired_records()[first : first + count]
        if not records:
            return "(no retired uops recorded)"
        base = min(r.fetched for r in records)
        span = max(r.retired for r in records) - base + 1
        scale = max(1, (span + width - 1) // width)
        lines = [f"cycles {base}..{base + span} (1 column = {scale} cycle(s))"]
        for record in records:
            row = [" "] * width

            def mark(cycle, char):
                if cycle >= 0:
                    index = min(width - 1, (cycle - base) // scale)
                    row[index] = char

            if record.issued >= 0 and record.completed >= 0:
                for cycle in range(record.issued, record.completed + 1, scale):
                    mark(cycle, "=")
            mark(record.fetched, "F")
            mark(record.dispatched, "D")
            mark(record.issued, "I")
            mark(record.completed, "C")
            mark(record.retired, "R")
            tag = "O" if record.was_oblivious else " "
            lines.append(
                f"{record.seq:6d} {record.pc:4d} {tag} "
                f"{record.text[:26]:26s} {''.join(row)}"
            )
        return "\n".join(lines)

    def average_latency(self) -> float:
        latencies = [r.latency for r in self.retired_records() if r.latency is not None]
        return sum(latencies) / len(latencies) if latencies else 0.0
