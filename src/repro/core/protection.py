"""STT+SDO as a pipeline protection scheme.

Extends :class:`~repro.stt.protection.SttProtection`: instead of delaying a
tainted transmitter, it mobilizes safe prediction —

* a tainted **load** consults the location predictor and issues as an
  Obl-Ld at the predicted level; a DRAM prediction reverts to STT-style
  delay (no DO variant exists for DRAM, Section VI-B2);
* a tainted **FP transmitter** (when ``fp_transmitters``) issues on the
  statically predicted fast path (Section I-A's running example);
* the location predictor is trained only at safe points, with untainted
  outcomes (Section V-C3), via :meth:`on_load_outcome`.

Precision/accuracy accounting for Table III happens here, at prediction
time, against the ground-truth residence level.
"""

from __future__ import annotations

from repro.common.config import AttackModel, MemLevel
from repro.core.predictors import LocationPredictor, PerfectPredictor
from repro.pipeline.protection import FpIssueAction, IssueDecision, LoadIssueAction
from repro.pipeline.uop import DynInst
from repro.stt.protection import SttProtection


class SdoProtection(SttProtection):
    """STT with SDO operations for tainted transmitters."""

    def __init__(
        self,
        predictor: LocationPredictor,
        attack_model: AttackModel = AttackModel.SPECTRE,
        fp_transmitters: bool = False,
        dram_do_variant: bool = False,
    ) -> None:
        super().__init__(attack_model=attack_model, fp_transmitters=fp_transmitters)
        self.predictor = predictor
        self.dram_do_variant = dram_do_variant
        self.name = f"STT+SDO({predictor.name})"
        self.sdo_stats = self.stats.group("sdo")

    # --- loads ------------------------------------------------------------ #

    def load_issue_decision(self, uop: DynInst) -> IssueDecision:
        if not self.sources_tainted(uop):
            return IssueDecision(LoadIssueAction.NORMAL)
        if uop.predicted_level is None:
            self._predict_for(uop)
        level = uop.predicted_level
        if level is MemLevel.DRAM and not self.dram_do_variant:
            # Section VI-B2: predicting DRAM means reverting to STT's
            # default protection for this load — delay, don't squash.
            return IssueDecision(LoadIssueAction.DELAY)
        return IssueDecision(LoadIssueAction.OBLIVIOUS, predicted_level=level)

    def _predict_for(self, uop: DynInst) -> None:
        actual = self.core.hierarchy.residence_level(uop.addr)
        oracle_hint = actual if isinstance(self.predictor, PerfectPredictor) else None
        level = self.predictor.predict(uop.pc, oracle_hint=oracle_hint)
        uop.predicted_level = level
        self.sdo_stats.bump("predictions")
        if level == actual:
            self.sdo_stats.bump("precise")
            self.sdo_stats.bump("accurate")
        elif level > actual:
            self.sdo_stats.bump("accurate")
        if level is MemLevel.DRAM and not self.dram_do_variant:
            self.sdo_stats.bump("dram_delays")

    def on_load_outcome(self, uop: DynInst, actual_level: MemLevel) -> None:
        """Safe-point training (success: at C; fail: with the level the
        validation/re-execution found)."""
        self.predictor.update(uop.pc, actual_level)
        self.sdo_stats.bump("updates")

    # --- FP transmitters ---------------------------------------------------- #

    def fp_issue_decision(self, uop: DynInst) -> FpIssueAction:
        if self.fp_transmitters and self.sources_tainted(uop):
            return FpIssueAction.PREDICT_FAST
        return FpIssueAction.NORMAL

    # --- reporting ---------------------------------------------------------- #

    @property
    def precision(self) -> float:
        total = self.sdo_stats["predictions"]
        return self.sdo_stats["precise"] / total if total else 0.0

    @property
    def accuracy(self) -> float:
        total = self.sdo_stats["predictions"]
        return self.sdo_stats["accurate"] / total if total else 0.0
