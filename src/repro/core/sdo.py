"""The general SDO framework (Section IV of the paper).

A microarchitect turns a transmitter ``result <- f(args)`` into an SDO
operation ``Obl-f`` in two steps:

1. design ``N`` *data-oblivious variants* ``Obl-f_i`` with signature
   ``success?, presult <- Obl-f_i(args)`` satisfying

   * **Definition 1 (functional correctness)**: if a variant returns
     success, ``presult == f(args)``; on fail, ``presult`` is undefined;
   * **Definition 2 (security)**: for any two operand assignments, the
     variant creates identical hardware resource interference;

2. design a *DO predictor* ``i <- predict(inp)`` / ``update((inp, actual))``
   whose inputs are non-sensitive (e.g. the PC).

This module implements that construction abstractly, mirroring the
pseudo-code of Figure 2: :meth:`SdoOperation.issue` is Part 1 (predict a
variant, execute it, forward the — possibly wrong — result) and
:meth:`SdoOperation.resolve` is Part 2 (once ``args`` untaints: train the
predictor on success, demand a squash + re-execution on fail).

The pipeline's Obl-Ld is a hand-specialized instance of this pattern (the
variants are per-cache-level lookups and the predictor is a location
predictor); this module is the reference form, used directly by the Obl-FP
example and by anyone extending SDO to a new transmitter.

Resource accounting: each variant declares a :class:`ResourceSignature`
(latency + named resources held).  :meth:`DOVariant.execute` must report
usage equal to its signature for every input — the property-based security
tests generate random operand pairs and check exactly that, which is how
Definition 2 is enforced rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

Args = TypeVar("Args")
Result = TypeVar("Result")


@dataclass(frozen=True)
class ResourceSignature:
    """Operand-independent resource usage of a DO variant."""

    latency: int
    resources: tuple[str, ...] = ()


@dataclass(frozen=True)
class VariantResult(Generic[Result]):
    """``success?, presult`` (Equation 1)."""

    success: bool
    presult: Result | None
    latency: int
    resources: tuple[str, ...] = ()


class DOVariant(Generic[Args, Result]):
    """One data-oblivious variant ``Obl-f_i``.

    Subclasses implement :meth:`_compute`, returning ``(success, presult)``.
    The base class stamps the declared resource signature onto every result,
    so a variant cannot accidentally report operand-dependent usage — if its
    *actual* behaviour varied, that must show up inside ``_compute`` and be
    caught by the correctness checks instead.
    """

    def __init__(self, name: str, signature: ResourceSignature) -> None:
        self.name = name
        self.signature = signature

    def _compute(self, args: Args) -> tuple[bool, Result | None]:
        raise NotImplementedError

    def execute(self, args: Args) -> VariantResult[Result]:
        success, presult = self._compute(args)
        if not success:
            presult = None  # Definition 1: presult undefined on fail
        return VariantResult(
            success=success,
            presult=presult,
            latency=self.signature.latency,
            resources=self.signature.resources,
        )


class DOPredictor:
    """``i <- predict(inp)`` / ``update((inp, actual_i))`` (Equations 2-3).

    ``inp`` must be non-sensitive (the PC, in the paper and here); the
    framework never passes operand values to the predictor.
    """

    def predict(self, inp: int) -> int:
        raise NotImplementedError

    def update(self, inp: int, actual_index: int) -> None:
        raise NotImplementedError


class StaticDOPredictor(DOPredictor):
    """Always predicts the same variant (the paper's FP example: N=1,
    statically predict 'operands are normal')."""

    def __init__(self, index: int = 0) -> None:
        self.index = index

    def predict(self, inp: int) -> int:
        return self.index

    def update(self, inp: int, actual_index: int) -> None:
        """Static predictors carry no state."""


@dataclass(frozen=True)
class IssueOutcome(Generic[Result]):
    """Part 1 of Figure 2: what the SDO operation forwarded.

    ``presult`` is forwarded to dependents *unconditionally* and remains
    tainted; ``success`` must NOT be revealed until ``args`` untaints —
    callers that branch on it early are violating the construction, so it is
    deliberately name-mangled into :attr:`_success_sealed`.
    """

    variant_index: int
    presult: Result | None
    latency: int
    resources: tuple[str, ...]
    _success_sealed: bool


@dataclass(frozen=True)
class ResolveOutcome(Generic[Result]):
    """Part 2 of Figure 2: the action once ``args`` is untainted."""

    squash: bool
    result: Result  # correct f(args); equals forwarded presult on success


class SdoOperation(Generic[Args, Result]):
    """``Obl-f``: the complete construction of Figure 2."""

    def __init__(
        self,
        reference: Callable[[Args], Result],
        variants: Sequence[DOVariant[Args, Result]],
        predictor: DOPredictor,
    ) -> None:
        if not variants:
            raise ValueError("an SDO operation needs at least one DO variant")
        self.reference = reference
        self.variants = list(variants)
        self.predictor = predictor
        self.issues = 0
        self.fails = 0

    def issue(self, pc: int, args: Args) -> IssueOutcome[Result]:
        """Part 1: predict a variant and execute it (operands tainted)."""
        index = self.predictor.predict(pc)
        if not 0 <= index < len(self.variants):
            raise IndexError(
                f"predictor chose variant {index}, but only "
                f"{len(self.variants)} exist"
            )
        outcome = self.variants[index].execute(args)
        self.issues += 1
        return IssueOutcome(
            variant_index=index,
            presult=outcome.presult,
            latency=outcome.latency,
            resources=outcome.resources,
            _success_sealed=outcome.success,
        )

    def resolve(self, pc: int, args: Args, issued: IssueOutcome[Result]) -> ResolveOutcome[Result]:
        """Part 2: ``args`` is untainted; reveal success?, train, or squash.

        On success the forwarded value stands and the predictor is trained.
        On fail the caller must squash dependents; the correct value is
        recomputed by the reference implementation (``return f(args)`` on
        Figure 2 line 16).
        """
        if issued._success_sealed:
            self.predictor.update(pc, issued.variant_index)
            return ResolveOutcome(squash=False, result=issued.presult)
        self.fails += 1
        correct = self.reference(args)
        actual = self._actual_variant(args)
        if actual is not None:
            self.predictor.update(pc, actual)
        return ResolveOutcome(squash=True, result=correct)

    def _actual_variant(self, args: Args) -> int | None:
        """Which variant would have succeeded (for predictor training)."""
        for index, variant in enumerate(self.variants):
            if variant.execute(args).success:
                return index
        return None
