"""Speculative Data-Oblivious execution (SDO) — the paper's contribution.

Three layers:

* :mod:`repro.core.sdo` — the *general* SDO framework of Section IV:
  data-oblivious variants (Definition 1/2), DO predictors, and the
  ``Obl-f`` construction of Figure 2, independent of any pipeline.
* :mod:`repro.core.predictors` — the location predictors of Section V-D:
  Static L1/L2/L3, Greedy, Loop, the Hybrid chooser, and the Perfect oracle.
* :mod:`repro.core.protection` — STT+SDO as a pipeline protection scheme:
  tainted loads issue as Obl-Ld operations at the predicted level (with the
  DRAM-prediction -> delay fallback of Section VI-B2), and tainted FP
  transmitters issue on the statically predicted fast path.
"""

from repro.core.sdo import (
    DOVariant,
    DOPredictor,
    SdoOperation,
    StaticDOPredictor,
    VariantResult,
)
from repro.core.predictors import (
    GreedyPredictor,
    HybridPredictor,
    LocationPredictor,
    LoopPredictor,
    PerfectPredictor,
    StaticPredictor,
    make_predictor,
)
from repro.core.protection import SdoProtection

__all__ = [
    "DOPredictor",
    "DOVariant",
    "GreedyPredictor",
    "HybridPredictor",
    "LocationPredictor",
    "LoopPredictor",
    "PerfectPredictor",
    "SdoOperation",
    "SdoProtection",
    "StaticDOPredictor",
    "StaticPredictor",
    "VariantResult",
    "make_predictor",
]
