"""Location predictors for the Obl-Ld (Section V-D).

A location predictor maps a load's static PC to a predicted memory level
``j``.  Terminology (suppose the data is really at level ``i``):

* **accurate and precise**: ``i == j`` — the ideal;
* **accurate but imprecise**: ``i < j`` — correct data, but the Obl-Ld
  waits for a deeper lookup than needed;
* **not accurate**: ``i > j`` — the DO variant fails, potentially a squash.

Predictors evaluated in the paper (Table II):

* ``Static L1/L2/L3`` — always predict one level;
* ``Hybrid`` — chooses per-PC between a *greedy* component (predict the
  deepest level seen in the last ``m`` instances; favours imprecision over
  inaccuracy) and a *loop* component (learns "one L1 miss every N accesses"
  stride patterns), via a saturating confidence counter.  4 KB of state.
* ``Perfect`` — an oracle that asks the cache model where the line is.

Predictor inputs are PCs and resolved levels only — never addresses or data
— which is what makes predictions safe to act on under STT (Section III-B).
"""

from __future__ import annotations

from collections import deque

from repro.common.config import MemLevel, PredictorKind


class LocationPredictor:
    """Interface: ``predict`` may not see anything tainted."""

    name = "base"

    def predict(self, pc: int, oracle_hint: MemLevel | None = None) -> MemLevel:
        """Predict the level for the load at ``pc``.

        ``oracle_hint`` is supplied by the simulator and used *only* by the
        Perfect predictor (it stands in for hardware that cannot exist);
        real predictors must ignore it.
        """
        raise NotImplementedError

    def update(self, pc: int, actual: MemLevel) -> None:
        raise NotImplementedError


class StaticPredictor(LocationPredictor):
    """Always predicts a fixed level."""

    def __init__(self, level: MemLevel) -> None:
        if level is MemLevel.DRAM:
            raise ValueError("no DO variant exists for DRAM (Section VI-B2)")
        self.level = level
        self.name = f"Static {level.pretty}"

    def predict(self, pc: int, oracle_hint: MemLevel | None = None) -> MemLevel:
        return self.level

    def update(self, pc: int, actual: MemLevel) -> None:
        """Stateless."""


class GreedyPredictor(LocationPredictor):
    """Predicts the deepest level seen in the last ``m`` dynamic instances
    of the load — pattern 1 of Section V-D (coarse-grained level changes).
    Deliberately favours imprecision over inaccuracy."""

    name = "Greedy"

    def __init__(self, window: int = 4) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._history: dict[int, deque[MemLevel]] = {}

    def predict(self, pc: int, oracle_hint: MemLevel | None = None) -> MemLevel:
        history = self._history.get(pc)
        if not history:
            return MemLevel.L1
        return max(history)

    def update(self, pc: int, actual: MemLevel) -> None:
        history = self._history.get(pc)
        if history is None:
            history = deque(maxlen=self.window)
            self._history[pc] = history
        history.append(actual)


class LoopPredictor(LocationPredictor):
    """Predicts periodic "L1, L1, ..., L1, L2" stride patterns — pattern 2
    of Section V-D (one lower-level miss per N sequential accesses).

    Per PC it learns the interval between non-L1 accesses like a loop branch
    predictor: the interval becomes trusted after being seen twice in a row.
    """

    name = "Loop"

    def __init__(self) -> None:
        # pc -> [count since last non-L1, learned period, candidate period,
        #        deep level, confident]
        self._state: dict[int, list] = {}

    def predict(self, pc: int, oracle_hint: MemLevel | None = None) -> MemLevel:
        state = self._state.get(pc)
        if state is None:
            return MemLevel.L1
        count, period, _, deep_level, confident = state
        if confident and period > 0 and count + 1 >= period:
            return deep_level
        if confident and period == 1:
            return deep_level
        return MemLevel.L1

    def update(self, pc: int, actual: MemLevel) -> None:
        state = self._state.setdefault(pc, [0, 0, 0, MemLevel.L2, False])
        if actual is MemLevel.L1:
            state[0] += 1
            return
        interval = state[0] + 1
        state[0] = 0
        state[3] = actual
        if interval == state[2]:
            state[1] = interval
            state[4] = True
        else:
            state[4] = False
        state[2] = interval


class HybridPredictor(LocationPredictor):
    """Greedy + Loop behind a per-PC saturating confidence chooser.

    The chooser scores each component on every resolved outcome — precise
    beats accurate beats inaccurate — and drifts toward the better one.
    Total state for the evaluated sizing is ~4 KB (paper, Section VIII-A):
    1K PC entries x (2b chooser + greedy window + loop interval state).
    """

    name = "Hybrid"

    def __init__(self, window: int = 4, chooser_bits: int = 2, entries: int = 1024) -> None:
        self.greedy = GreedyPredictor(window)
        self.loop = LoopPredictor()
        self._chooser: dict[int, int] = {}
        self._chooser_max = (1 << chooser_bits) - 1
        self._entries_mask = entries - 1
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        # Remember each component's outstanding prediction for scoring.
        self._last: dict[int, tuple[MemLevel, MemLevel]] = {}

    def _key(self, pc: int) -> int:
        return pc & self._entries_mask

    def predict(self, pc: int, oracle_hint: MemLevel | None = None) -> MemLevel:
        greedy_pred = self.greedy.predict(pc)
        loop_pred = self.loop.predict(pc)
        self._last[self._key(pc)] = (greedy_pred, loop_pred)
        use_loop = self._chooser.get(self._key(pc), self._chooser_max // 2) > self._chooser_max // 2
        return loop_pred if use_loop else greedy_pred

    @staticmethod
    def _score(predicted: MemLevel, actual: MemLevel) -> int:
        if predicted == actual:
            return 2  # accurate and precise
        if predicted > actual:
            return 1  # accurate but imprecise
        return 0  # not accurate (would fail)

    def update(self, pc: int, actual: MemLevel) -> None:
        key = self._key(pc)
        last = self._last.get(key)
        if last is not None:
            greedy_score = self._score(last[0], actual)
            loop_score = self._score(last[1], actual)
            if greedy_score != loop_score:
                counter = self._chooser.get(key, self._chooser_max // 2)
                counter += 1 if loop_score > greedy_score else -1
                self._chooser[key] = max(0, min(self._chooser_max, counter))
        self.greedy.update(pc, actual)
        self.loop.update(pc, actual)


class PerfectPredictor(LocationPredictor):
    """Oracle: always predicts the true current residence level.

    Exists to bound SDO's potential (Section VIII-B, "Perfect").  Relies on
    the ``oracle_hint`` the simulator passes in; it has no learnable state.
    A DRAM hint is passed through unchanged — the protection layer turns it
    into a delay, so even the oracle never squashes *and* never touches
    DRAM obliviously.
    """

    name = "Perfect"

    def predict(self, pc: int, oracle_hint: MemLevel | None = None) -> MemLevel:
        if oracle_hint is None:
            raise ValueError("PerfectPredictor requires the oracle hint")
        return oracle_hint

    def update(self, pc: int, actual: MemLevel) -> None:
        """Oracles do not learn."""


def make_predictor(kind: PredictorKind) -> LocationPredictor:
    """Factory for the Table II predictor configurations."""
    if kind is PredictorKind.STATIC_L1:
        return StaticPredictor(MemLevel.L1)
    if kind is PredictorKind.STATIC_L2:
        return StaticPredictor(MemLevel.L2)
    if kind is PredictorKind.STATIC_L3:
        return StaticPredictor(MemLevel.L3)
    if kind is PredictorKind.HYBRID:
        return HybridPredictor()
    if kind is PredictorKind.PERFECT:
        return PerfectPredictor()
    raise ValueError(f"unknown predictor kind: {kind}")
