"""L1 TLB with a page-walk path and a data-oblivious probe.

Section V-B ("Virtual memory"): every load consults the TLB, and TLB
hits/misses leak.  SDO's strategy is a *single* DO variant that probes the L1
TLB only: on a hit the Obl-Ld proceeds; on a miss it continues with an
undefined translation (a guaranteed fail) and the L2 TLB / page walker is not
consulted until the load is safe.  :meth:`Tlb.probe` is that DO lookup —
presence check, no replacement update, no walk.

The simulated machine uses an identity virtual->physical mapping (a single
flat address space), so the TLB's only effect is timing and the hit/miss
channel — which is all the paper's mechanism needs.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.config import TlbConfig


class Tlb:
    """Set-associative TLB with LRU replacement."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.num_sets = max(1, config.entries // config.assoc)
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr // self.config.page_size

    def _set_for(self, page: int) -> OrderedDict[int, None]:
        return self._sets[page % self.num_sets]

    def probe(self, addr: int) -> bool:
        """Data-oblivious presence check: no LRU update, no fill, no walk."""
        page = self.page_of(addr)
        return page in self._set_for(page)

    def access(self, addr: int) -> tuple[bool, int]:
        """Normal translation. Returns ``(hit, latency)``.

        A miss pays the page-walk latency and fills the entry (evicting LRU).
        """
        page = self.page_of(addr)
        entries = self._set_for(page)
        if page in entries:
            entries.move_to_end(page)
            self.hits += 1
            return True, self.config.hit_latency
        self.misses += 1
        if len(entries) >= self.config.assoc:
            entries.popitem(last=False)
        entries[page] = None
        return False, self.config.walk_latency

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
