"""A shared-memory system: multiple cores over one L3 + directory.

The SPEC evaluation is single-threaded, but Section V-C1's consistency
machinery only matters because *other agents exist*: an Obl-Ld may read a
line the L1 never holds, so a remote store's invalidation would be missed
without validation/exposure.  This module provides the "other agents":

* each core gets its own :class:`~repro.memory.hierarchy.MemoryHierarchy`
  (private L1/L2 + a view of the shared L3),
* one :class:`~repro.memory.coherence.Directory` arbitrates,
* :meth:`SharedMemorySystem.remote_store` performs a store on behalf of
  core ``i`` and delivers invalidations to every sharer's caches *and* its
  pipeline (so consistency checks fire),
* a committed-memory image is shared between all cores, defining the
  single serialization the golden checks can reason about.

The multi-core example and the consistency integration tests drive a victim
core while writer agents mutate its working set through this system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.config import MachineConfig
from repro.isa.iss import ArchState
from repro.memory.coherence import Directory
from repro.memory.hierarchy import MemoryHierarchy

if TYPE_CHECKING:  # pragma: no cover - layering: memory must not need pipeline
    from repro.pipeline.core import Core


@dataclass
class _Agent:
    """One participant: a full core, or a memory-only writer."""

    hierarchy: MemoryHierarchy
    core: "Core | None" = None


class SharedMemorySystem:
    """N agents sharing a directory, an L3 image, and committed memory."""

    def __init__(self, config: MachineConfig | None = None, num_agents: int = 2) -> None:
        if num_agents < 1:
            raise ValueError("need at least one agent")
        self.config = config or MachineConfig()
        self.directory = Directory(num_agents)
        self.shared_memory: dict[int, int | float] = {}
        self._agents: list[_Agent] = [
            _Agent(MemoryHierarchy(self.config, num_cores=num_agents, core_id=i))
            for i in range(num_agents)
        ]

    @property
    def num_agents(self) -> int:
        return len(self._agents)

    def hierarchy(self, agent: int) -> MemoryHierarchy:
        return self._agents[agent].hierarchy

    def attach_core(self, agent: int, core: "Core") -> None:
        """Register a pipeline so invalidations reach its load queue."""
        if core.hierarchy is not self._agents[agent].hierarchy:
            raise ValueError("core must be built on this agent's hierarchy")
        self._agents[agent].core = core
        # The core's committed memory becomes the shared image.
        core.committed.memory = self.shared_memory
        self.shared_memory.update(core.program.initial_memory)

    # ------------------------------------------------------------------ #
    # Coherent accesses on behalf of agents
    # ------------------------------------------------------------------ #

    def agent_load(self, agent: int, addr: int, now: int):
        """A read by ``agent``: directory GetS + local timing access."""
        hierarchy = self._agents[agent].hierarchy
        line = hierarchy.line_of(addr)
        result = self.directory.read(agent, line)
        if result.downgraded_core is not None:
            # Owner writes back; its private copies stay (now Shared).
            pass
        return hierarchy.load(addr, now)

    def remote_store(self, agent: int, addr: int, value: int | float, now: int = 0) -> frozenset[int]:
        """A store by ``agent``: directory GetX; every other sharer is
        invalidated — in its caches and, if a core is attached, in its load
        queue (which is what can trigger a delayed consistency squash).

        Returns the set of agents that received invalidations.
        """
        hierarchy = self._agents[agent].hierarchy
        line = hierarchy.line_of(addr)
        result = self.directory.write(agent, line)
        self.shared_memory[addr] = value
        for victim in result.invalidated_cores:
            target = self._agents[victim]
            if target.core is not None:
                target.core.notify_invalidation(addr)
            else:
                target.hierarchy.external_invalidate(addr)
        hierarchy.store(addr, now)
        return result.invalidated_cores

    def snapshot_memory(self) -> ArchState:
        """Committed architectural memory view (for assertions in tests)."""
        return ArchState(memory=dict(self.shared_memory))
