"""Set-associative cache arrays with banking and LRU replacement.

:class:`CacheArray` is purely structural: it tracks which lines are present,
their LRU order, and dirty bits.  It exposes two lookup flavours:

* :meth:`CacheArray.access` — a *normal* access: promotes the line in LRU
  order on a hit, and on a miss (with ``fill=True``) allocates the line,
  possibly evicting the LRU victim.  This is the state-changing path.
* :meth:`CacheArray.probe` — a *data-oblivious check*: reports presence
  without touching LRU state, dirty bits, or contents.  This is the lookup an
  Obl-Ld variant performs ("only checks if there is a tag match ... makes no
  address-dependent state changes", Section V-B).

Data *values* are not stored here — the simulator keeps values in a
functional memory image (see DESIGN.md §5.2); the cache tracks only
presence/recency/dirtiness, which is all the timing and security models need.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.config import CacheConfig


@dataclass(frozen=True)
class EvictedLine:
    """A victim pushed out by a fill."""

    line: int
    dirty: bool


class CacheArray:
    """Tag/LRU/dirty state of one cache (one slice, all banks)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        # Per set: line -> dirty flag, insertion order == LRU order
        # (OrderedDict, least recently used first).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    def bank_index(self, line: int) -> int:
        """Bank selection is address-dependent — that is the leak the
        all-banks rule of Section VI-B2 closes."""
        return line % self.config.banks

    def probe(self, line: int) -> bool:
        """Presence check with no state change (the DO lookup)."""
        return line in self._sets[self.set_index(line)]

    def access(
        self, line: int, write: bool = False, fill: bool = True
    ) -> tuple[bool, EvictedLine | None]:
        """Normal access. Returns ``(hit, evicted)``.

        On hit: promote to MRU, set dirty on writes.  On miss with ``fill``:
        insert the line (dirty iff write, i.e. write-allocate), evicting the
        LRU way if the set is full.
        """
        target_set = self._sets[self.set_index(line)]
        if line in target_set:
            dirty = target_set.pop(line) or write
            target_set[line] = dirty
            return True, None
        if not fill:
            return False, None
        evicted = None
        if len(target_set) >= self.assoc:
            victim_line, victim_dirty = target_set.popitem(last=False)
            evicted = EvictedLine(victim_line, victim_dirty)
        target_set[line] = write
        return False, evicted

    def fill(self, line: int, dirty: bool = False) -> EvictedLine | None:
        """Insert a line (used for fills coming back from lower levels)."""
        target_set = self._sets[self.set_index(line)]
        if line in target_set:
            existing = target_set.pop(line)
            target_set[line] = existing or dirty
            return None
        evicted = None
        if len(target_set) >= self.assoc:
            victim_line, victim_dirty = target_set.popitem(last=False)
            evicted = EvictedLine(victim_line, victim_dirty)
        target_set[line] = dirty
        return evicted

    def invalidate(self, line: int) -> bool:
        """Remove a line (coherence invalidation). Returns True if present."""
        target_set = self._sets[self.set_index(line)]
        if line in target_set:
            del target_set[line]
            return True
        return False

    def is_dirty(self, line: int) -> bool:
        target_set = self._sets[self.set_index(line)]
        return target_set.get(line, False)

    def resident_lines(self) -> set[int]:
        """All lines currently present (test/diagnostic helper)."""
        lines: set[int] = set()
        for target_set in self._sets:
            lines.update(target_set)
        return lines

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def flush(self) -> None:
        for target_set in self._sets:
            target_set.clear()

    def __repr__(self) -> str:
        return (
            f"CacheArray({self.config.name}, {self.num_sets} sets x "
            f"{self.assoc} ways, {self.occupancy()} lines resident)"
        )
