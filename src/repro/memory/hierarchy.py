"""The composed memory hierarchy: L1D -> L2 -> sliced L3 -> DRAM, plus TLB.

This is the timing engine behind the core's load/store unit.  Requests are
resolved *eagerly*: the hierarchy computes the completion cycle of a request
at issue time, accounting for port and bank contention (FIFO servers), MSHR
capacity, mesh distance, and DRAM row-buffer state.  The core then schedules
the writeback at that cycle.  This style keeps the model fast while
preserving the contention effects the paper measures.

Two access paths:

``load`` / ``store`` / ``validate``
    The normal, address-dependent path: bank selection by address, MSHR
    merging, LRU updates and fills, slice selection by address hash, DRAM
    row-buffer timing.

``oblivious_load``
    The Obl-Ld path of Sections V-B/VI-B2: a serial walk of tag *probes*
    from the L1 down to the predicted level; each level's lookup reserves
    **all** banks (all slices for the L3), allocates a *private* MSHR at an
    address-independent slot, changes no cache state, and responds after the
    level's fixed latency.  The returned per-level response schedule is what
    the core's wait buffer consumes.

``speculative_load`` / ``release_speculative`` / ``drop_speculative``
    The transparent-speculation path (SpecBox-style label-based schemes):
    the load executes with its real address-dependent timing — banks, ports,
    MSHRs and the DRAM row buffer are all used for real — but **no cache
    array state changes**; the fetched line parks in a per-core speculative
    buffer instead.  ``release_speculative`` merges the line into the caches
    when the load commits; ``drop_speculative`` discards it on squash,
    leaving no cache-state trace.  Note what this path deliberately does
    *not* hide: transient DRAM row-buffer state and bank/MSHR contention
    remain address-dependent, which is exactly the residual channel the
    forward-interference harness measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CacheConfig, MachineConfig, MemLevel
from repro.common.stats import StatGroup
from repro.memory.cache import CacheArray
from repro.memory.coherence import Directory
from repro.memory.dram import Dram
from repro.memory.interconnect import Mesh, slice_node, slice_of_line
from repro.memory.mshr import MshrFile
from repro.memory.observer import ResourceObserver
from repro.memory.tlb import Tlb

#: Cycles a lookup occupies its cache bank (pipeline occupancy, not latency).
BANK_OCCUPANCY = 1

#: Literal stat-counter names per residence level, precomputed so every
#: bumped key is a static string (the ``stat-key`` lint checker extracts
#: these; an f-string here would silently fork a counter on a typo).
_HIT_COUNTERS = {
    MemLevel.L1: "hits_l1",
    MemLevel.L2: "hits_l2",
    MemLevel.L3: "hits_l3",
    MemLevel.DRAM: "hits_dram",
}
_OBL_PRED_COUNTERS = {
    MemLevel.L1: "obl_pred_l1",
    MemLevel.L2: "obl_pred_l2",
    MemLevel.L3: "obl_pred_l3",
    MemLevel.DRAM: "obl_pred_dram",
}
#: Cycles an oblivious lookup holds *all* banks of a level (Section VI-B2:
#: "after the Obl-Ld enters the cache, all succeeding requests are blocked
#: until the Obl-Ld request completes its lookup").
OBL_BANK_OCCUPANCY = 2


class _BankSet:
    """Per-bank FIFO servers: each bank serves one request at a time."""

    def __init__(self, banks: int) -> None:
        self._free_at = [0] * banks

    def reserve(self, bank: int, earliest: int, duration: int) -> int:
        """Reserve one bank; returns the granted start cycle."""
        start = max(earliest, self._free_at[bank])
        self._free_at[bank] = start + duration
        return start

    def reserve_all(self, earliest: int, duration: int) -> int:
        """Reserve every bank simultaneously (the Obl-Ld rule)."""
        start = max(earliest, max(self._free_at))
        for bank in range(len(self._free_at)):
            self._free_at[bank] = start + duration
        return start

    def free_at(self, bank: int) -> int:
        return self._free_at[bank]


class _PortScheduler:
    """At most ``ports`` request grants per cycle.

    Per-cycle usage counts are pruned once grants move far enough ahead, to
    bound memory over long runs.  Pruning raises ``_floor``, a monotone lower
    bound below which usage is no longer tracked: requests asking for a
    pruned cycle are clamped up to the floor rather than re-granted into
    cycles whose (discarded) counts may already have been full.
    """

    def __init__(self, ports: int) -> None:
        self.ports = ports
        self._used: dict[int, int] = {}
        self._horizon = 0
        self._floor = 0

    def grant(self, earliest: int) -> int:
        cycle = max(earliest, self._floor)
        while self._used.get(cycle, 0) >= self.ports:
            cycle += 1
        self._used[cycle] = self._used.get(cycle, 0) + 1
        if cycle > self._horizon + 4096:
            self._floor = cycle - 64
            self._used = {c: n for c, n in self._used.items() if c >= self._floor}
            self._horizon = cycle
        return cycle


@dataclass(frozen=True)
class LoadResponse:
    """Completion of a normal (or validation) load."""

    complete_at: int
    level: MemLevel  # where the data was found
    tlb_hit: bool
    mshr_merged: bool = False


@dataclass(frozen=True)
class OblLoadResponse:
    """Completion schedule of an oblivious load.

    ``responses`` lists ``(level, cycle, hit)`` for every level looked up, in
    L1-to-predicted order — caches respond in order (footnote 2 of the
    paper), which is what makes early forwarding sound.  ``actual_level`` is
    where the data really lives *now* (DRAM if uncached); ``success`` is the
    Definition-1 flag: data found at or above the predicted level and the
    DO TLB probe hit.
    """

    predicted_level: MemLevel
    actual_level: MemLevel
    success: bool
    tlb_hit: bool
    responses: tuple[tuple[MemLevel, int, bool], ...]
    complete_at: int

    def first_success_cycle(self) -> int | None:
        """Cycle at which a success response (with all earlier levels'
        responses already in) reaches the wait buffer; None if all fail."""
        for _, cycle, hit in self.responses:
            if hit:
                return cycle
        return None


@dataclass
class _Level:
    """One private cache level's timing state."""

    config: CacheConfig
    array: CacheArray
    banks: _BankSet
    ports: _PortScheduler
    mshrs: MshrFile


class MemoryHierarchy:
    """Single-core view of the memory system (core 0 of ``num_cores``)."""

    def __init__(
        self,
        config: MachineConfig,
        observer: ResourceObserver | None = None,
        num_cores: int = 1,
        core_id: int = 0,
    ) -> None:
        self.config = config
        self.observer = observer or ResourceObserver(enabled=False)
        self.core_id = core_id
        self.stats = StatGroup("mem")

        self.l1 = self._make_level(config.l1d)
        self.l2 = self._make_level(config.l2)
        # The L3 is sliced: one array + bank set per slice, a shared port
        # scheduler per slice, and one MSHR file between L2 and L3.
        self.l3_slices = [
            _Level(
                config.l3,
                CacheArray(config.l3),
                _BankSet(config.l3.banks),
                _PortScheduler(config.l3.ports),
                MshrFile(config.l3.mshrs),
            )
            for _ in range(config.l3.slices)
        ]
        self.tlb = Tlb(config.tlb)
        self.dram = Dram(config.dram, line_size=config.line_size)
        self.mesh = Mesh(config.mesh_dims, config.mesh_hop_latency)
        self.directory = Directory(num_cores)
        self._core_node = core_id % self.mesh.num_nodes
        self._obl_l3_round_trip = self.mesh.max_round_trip(self._core_node)
        # Speculative buffer (transparent-speculation path): line -> count
        # of in-flight buffered loads holding it.  Capacity is bounded by
        # the LQ (every entry belongs to an in-flight load), so no separate
        # eviction policy is needed.
        self._spec_buffer: dict[int, int] = {}

    @staticmethod
    def _make_level(config: CacheConfig) -> _Level:
        return _Level(
            config,
            CacheArray(config),
            _BankSet(config.banks),
            _PortScheduler(config.ports),
            MshrFile(config.mshrs),
        )

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #

    def line_of(self, addr: int) -> int:
        return addr // self.config.line_size

    def slice_of(self, line: int) -> int:
        return slice_of_line(line, self.config.l3.slices)

    def residence_level(self, addr: int) -> MemLevel:
        """Where a load for ``addr`` would find its data right now.

        This is the oracle the Perfect predictor consults and the ground
        truth for precision/accuracy accounting (Section V-D).
        """
        line = self.line_of(addr)
        if self.l1.array.probe(line):
            return MemLevel.L1
        if self.l2.array.probe(line):
            return MemLevel.L2
        if self.l3_slices[self.slice_of(line)].array.probe(line):
            return MemLevel.L3
        return MemLevel.DRAM

    def line_in_l1(self, addr: int) -> bool:
        return self.l1.array.probe(self.line_of(addr))

    # ------------------------------------------------------------------ #
    # Normal (address-dependent) path
    # ------------------------------------------------------------------ #

    def load(self, addr: int, now: int, write: bool = False) -> LoadResponse:
        """A normal, state-changing memory access.

        Used for untainted loads, committed stores (``write=True``),
        validations, and exposures — all of which legitimately reveal the
        address through their resource usage.
        """
        self.stats.bump("stores" if write else "loads")
        line = self.line_of(addr)
        tlb_hit, tlb_latency = self.tlb.access(addr)
        if not tlb_hit:
            self.observer.emit(now, "TLB", "walk", self.tlb.page_of(addr))
        cursor = now + tlb_latency

        level_found, cursor = self._walk_caches(line, cursor, write)
        self.stats.bump(_HIT_COUNTERS[level_found])
        return LoadResponse(
            complete_at=cursor, level=level_found, tlb_hit=tlb_hit
        )

    def store(self, addr: int, now: int) -> LoadResponse:
        return self.load(addr, now, write=True)

    def validate(self, addr: int, now: int) -> LoadResponse:
        """InvisiSpec-style validation: a standard access that brings the
        line into the L1 (Section V-C1)."""
        self.stats.bump("validations")
        return self.load(addr, now)

    def expose(self, addr: int, now: int) -> LoadResponse:
        """Exposure: same cache effects as a validation, but the caller does
        not wait for it (asynchronous fill)."""
        self.stats.bump("exposures")
        return self.load(addr, now)

    def _walk_caches(
        self, line: int, cursor: int, write: bool
    ) -> tuple[MemLevel, int]:
        """Address-dependent walk: L1 -> L2 -> L3(slice) -> DRAM with fills.

        MSHR entries are allocated at every level the miss crosses, with a
        release at the walk's final completion cycle.  If an MSHR file is
        full when the miss reaches it, the stall is added to the completion
        time (a small approximation: the stall delays this request rather
        than re-ordering the whole walk).
        """
        # --- L1 ---
        grant = self.l1.ports.grant(cursor)
        start = self.l1.banks.reserve(self.l1.array.bank_index(line), grant, BANK_OCCUPANCY)
        self.observer.emit(start, "L1D.bank", "reserve", self.l1.array.bank_index(line))
        hit, evicted = self.l1.array.access(line, write=write)
        cursor = start + self.l1.config.latency
        if hit:
            self.observer.emit(cursor, "L1D", "respond", self.l1.array.set_index(line))
            return MemLevel.L1, cursor
        self._note_eviction(evicted, self.l2, cursor, "L1D")
        if self.l1.mshrs.would_merge(line, cursor):
            # A fill for this very line is already in flight: merge into it
            # and complete when it returns (Section VI-B1).
            self.stats.bump("mshr_merges")
            merge = self.l1.mshrs.allocate(line, cursor, cursor)
            return MemLevel.L2, max(cursor, merge.release)
        misses_crossed: list[MshrFile] = [self.l1.mshrs]

        # --- L2 ---
        grant = self.l2.ports.grant(cursor)
        start = self.l2.banks.reserve(self.l2.array.bank_index(line), grant, BANK_OCCUPANCY)
        self.observer.emit(start, "L2.bank", "reserve", self.l2.array.bank_index(line))
        hit, evicted = self.l2.array.access(line, write=write)
        cursor = start + self.l2.config.latency
        if hit:
            self.observer.emit(cursor, "L2", "respond", self.l2.array.set_index(line))
            self.observer.emit(cursor, "L1D", "fill", self.l1.array.set_index(line))
            cursor = self._allocate_miss_mshrs(misses_crossed, line, start, cursor)
            return MemLevel.L2, cursor
        self._note_eviction(evicted, None, cursor, "L2")
        misses_crossed.append(self.l2.mshrs)

        # --- L3 slice (over the mesh) ---
        slice_index = self.slice_of(line)
        slice_level = self.l3_slices[slice_index]
        wire = self.mesh.latency(self._core_node, slice_node(slice_index, self.mesh))
        arrive = cursor + wire
        grant = slice_level.ports.grant(arrive)
        start = slice_level.banks.reserve(
            slice_level.array.bank_index(line), grant, BANK_OCCUPANCY
        )
        self.observer.emit(
            start, "L3.slice", "reserve", (slice_index, slice_level.array.bank_index(line))
        )
        hit, evicted = slice_level.array.access(line, write=write)
        cursor = start + slice_level.config.latency + wire  # response travels back
        if hit:
            self.observer.emit(cursor, "L3", "respond", slice_index)
            self.observer.emit(cursor, "L2", "fill", self.l2.array.set_index(line))
            self.observer.emit(cursor, "L1D", "fill", self.l1.array.set_index(line))
            cursor = self._allocate_miss_mshrs(misses_crossed, line, start, cursor)
            return MemLevel.L3, cursor
        self._note_eviction(evicted, None, cursor, "L3")
        misses_crossed.append(slice_level.mshrs)

        # --- DRAM ---
        dram_latency = self.dram.access(line)
        self.observer.emit(
            cursor, "DRAM.row", "access", (self.dram.bank_of(line), self.dram.row_of(line))
        )
        cursor += dram_latency
        self.observer.emit(cursor, "L2", "fill", self.l2.array.set_index(line))
        self.observer.emit(cursor, "L1D", "fill", self.l1.array.set_index(line))
        cursor = self._allocate_miss_mshrs(misses_crossed, line, cursor, cursor)
        return MemLevel.DRAM, cursor

    def _allocate_miss_mshrs(
        self, files: list[MshrFile], line: int, now: int, fill_at: int
    ) -> int:
        """Allocate MSHRs at every level a miss crossed; the entries release
        when the fill returns.  Returns the (possibly stall-extended)
        completion cycle."""
        completion = fill_at
        for mshr_file in files:
            alloc = mshr_file.allocate(line, now, fill_at)
            if alloc.granted_at > now:
                self.stats.bump("mshr_stalls")
                completion += alloc.granted_at - now
        return completion

    def _note_eviction(self, evicted, next_level: _Level | None, cycle: int, name: str) -> None:
        if evicted is None:
            return
        self.stats.bump("evictions")
        self.observer.emit(cycle, name, "evict", evicted.line)
        if not evicted.dirty:
            return
        self.stats.bump("writebacks")
        if next_level is not None:
            # Dirty L1 victim written back into the L2.
            bank = next_level.array.bank_index(evicted.line)
            next_level.banks.reserve(bank, cycle, BANK_OCCUPANCY)
            next_level.array.fill(evicted.line, dirty=True)
        elif name == "L2":
            # Dirty L2 victim written back into its L3 slice.
            victim_slice = self.l3_slices[self.slice_of(evicted.line)]
            bank = victim_slice.array.bank_index(evicted.line)
            victim_slice.banks.reserve(bank, cycle, BANK_OCCUPANCY)
            victim_slice.array.fill(evicted.line, dirty=True)
        # A dirty L3 victim goes to DRAM; no cache state to update.

    # ------------------------------------------------------------------ #
    # Transparent-speculation path (SpecBox-style speculative buffer)
    # ------------------------------------------------------------------ #

    def speculative_load(self, addr: int, now: int) -> LoadResponse:
        """A speculative load whose cache side effects are confined.

        Timing mirrors the normal path — same TLB access, port grants, bank
        reservations, MSHR allocations and DRAM row-buffer timing — but the
        cache arrays are only *probed*, never filled or LRU-promoted.  The
        fetched line parks in the speculative buffer; later buffered loads
        of the same line hit it at L1 latency.  The caller must pair every
        call with ``release_speculative`` (commit) or ``drop_speculative``
        (squash).
        """
        self.stats.bump("spec_loads")
        line = self.line_of(addr)
        tlb_hit, tlb_latency = self.tlb.access(addr)
        if not tlb_hit:
            self.observer.emit(now, "TLB", "walk", self.tlb.page_of(addr))
        cursor = now + tlb_latency

        if self._spec_buffer.get(line, 0) > 0:
            # Buffer hit: served beside the L1, paying an L1 port/bank slot
            # (the buffer is probed through the same load pipe).
            self.stats.bump("spec_buffer_hits")
            grant = self.l1.ports.grant(cursor)
            start = self.l1.banks.reserve(
                self.l1.array.bank_index(line), grant, BANK_OCCUPANCY
            )
            self.observer.emit(start, "SpecBuf", "hit", line)
            self._spec_buffer[line] += 1
            return LoadResponse(
                complete_at=start + self.l1.config.latency,
                level=self.residence_level(addr),
                tlb_hit=tlb_hit,
            )

        level_found, cursor = self._walk_caches_transparent(line, cursor)
        self.stats.bump(_HIT_COUNTERS[level_found])
        self._spec_buffer[line] = self._spec_buffer.get(line, 0) + 1
        self.observer.emit(cursor, "SpecBuf", "insert", line)
        return LoadResponse(
            complete_at=cursor, level=level_found, tlb_hit=tlb_hit
        )

    def _walk_caches_transparent(
        self, line: int, cursor: int
    ) -> tuple[MemLevel, int]:
        """The normal walk's timing without its cache-state changes.

        Structure mirrors ``_walk_caches``: misses cross the same MSHR
        files, reserve the same banks and pay the same latencies, and a
        DRAM access opens its row for real — but ``probe`` replaces
        ``access``, so there are no fills, promotions or evictions.
        """
        # --- L1 ---
        grant = self.l1.ports.grant(cursor)
        start = self.l1.banks.reserve(self.l1.array.bank_index(line), grant, BANK_OCCUPANCY)
        self.observer.emit(start, "L1D.bank", "reserve", self.l1.array.bank_index(line))
        cursor = start + self.l1.config.latency
        if self.l1.array.probe(line):
            self.observer.emit(cursor, "L1D", "respond", self.l1.array.set_index(line))
            return MemLevel.L1, cursor
        if self.l1.mshrs.would_merge(line, cursor):
            self.stats.bump("mshr_merges")
            merge = self.l1.mshrs.allocate(line, cursor, cursor)
            return MemLevel.L2, max(cursor, merge.release)
        misses_crossed: list[MshrFile] = [self.l1.mshrs]

        # --- L2 ---
        grant = self.l2.ports.grant(cursor)
        start = self.l2.banks.reserve(self.l2.array.bank_index(line), grant, BANK_OCCUPANCY)
        self.observer.emit(start, "L2.bank", "reserve", self.l2.array.bank_index(line))
        cursor = start + self.l2.config.latency
        if self.l2.array.probe(line):
            self.observer.emit(cursor, "L2", "respond", self.l2.array.set_index(line))
            cursor = self._allocate_miss_mshrs(misses_crossed, line, start, cursor)
            return MemLevel.L2, cursor
        misses_crossed.append(self.l2.mshrs)

        # --- L3 slice (over the mesh) ---
        slice_index = self.slice_of(line)
        slice_level = self.l3_slices[slice_index]
        wire = self.mesh.latency(self._core_node, slice_node(slice_index, self.mesh))
        arrive = cursor + wire
        grant = slice_level.ports.grant(arrive)
        start = slice_level.banks.reserve(
            slice_level.array.bank_index(line), grant, BANK_OCCUPANCY
        )
        self.observer.emit(
            start, "L3.slice", "reserve", (slice_index, slice_level.array.bank_index(line))
        )
        cursor = start + slice_level.config.latency + wire
        if slice_level.array.probe(line):
            self.observer.emit(cursor, "L3", "respond", slice_index)
            cursor = self._allocate_miss_mshrs(misses_crossed, line, start, cursor)
            return MemLevel.L3, cursor
        misses_crossed.append(slice_level.mshrs)

        # --- DRAM (row-buffer state changes for real: the one piece of
        # shared timing state transparent speculation cannot hide) ---
        dram_latency = self.dram.access(line)
        self.observer.emit(
            cursor, "DRAM.row", "access", (self.dram.bank_of(line), self.dram.row_of(line))
        )
        cursor += dram_latency
        cursor = self._allocate_miss_mshrs(misses_crossed, line, cursor, cursor)
        return MemLevel.DRAM, cursor

    def release_speculative(self, addr: int, now: int) -> None:
        """A buffered load committed: its line becomes architecturally
        visible, merging from the speculative buffer into the caches (the
        fills a normal load would have done at issue happen here instead).
        """
        line = self.line_of(addr)
        self.stats.bump("spec_releases")
        self._spec_buffer.pop(line, None)
        self.observer.emit(now, "SpecBuf", "release", line)
        evicted = self.l1.array.fill(line, dirty=False)
        self._note_eviction(evicted, self.l2, now, "L1D")
        evicted = self.l2.array.fill(line, dirty=False)
        self._note_eviction(evicted, None, now, "L2")
        evicted = self.l3_slices[self.slice_of(line)].array.fill(line, dirty=False)
        self._note_eviction(evicted, None, now, "L3")

    def drop_speculative(self, addr: int) -> None:
        """A buffered load squashed: drop its buffer reference.  Once no
        in-flight load holds the line, the entry vanishes without ever
        touching cache state."""
        line = self.line_of(addr)
        self.stats.bump("spec_drops")
        held = self._spec_buffer.get(line, 0)
        if held <= 1:
            self._spec_buffer.pop(line, None)
        else:
            self._spec_buffer[line] = held - 1

    # ------------------------------------------------------------------ #
    # Data-oblivious path (Obl-Ld variants, Section VI-B2)
    # ------------------------------------------------------------------ #

    def oblivious_load(
        self, addr: int, predicted_level: MemLevel, now: int
    ) -> OblLoadResponse:
        """Execute the DO variant ``Obl-Ld_j`` for ``j = predicted_level``.

        Looks up every level from the L1 down to ``j`` with address-oblivious
        resource usage.  Never reaches DRAM (no DO variant exists for it);
        callers must turn DRAM predictions into delays *before* calling.
        """
        if predicted_level is MemLevel.DRAM:
            raise ValueError(
                "no DO variant exists for DRAM (Section VI-B2); "
                "a DRAM prediction must fall back to delayed execution"
            )
        line = self.line_of(addr)
        self.stats.bump("obl_loads")
        self.stats.bump(_OBL_PRED_COUNTERS[predicted_level])

        # DO TLB probe: presence check only; a miss does NOT trigger a walk
        # and poisons the access into a guaranteed fail (Section V-B).
        tlb_hit = self.tlb.probe(addr)
        self.observer.emit(now, "TLB", "probe", None)  # address-independent
        if not tlb_hit:
            self.stats.bump("obl_tlb_fails")
        cursor = now + self.config.tlb.hit_latency

        actual_level = self.residence_level(addr)
        responses: list[tuple[MemLevel, int, bool]] = []

        for level in (MemLevel.L1, MemLevel.L2, MemLevel.L3):
            if level > predicted_level:
                break
            if level is MemLevel.L3:
                cursor, respond_at = self._oblivious_l3_lookup(cursor)
            else:
                target = self.l1 if level is MemLevel.L1 else self.l2
                cursor, respond_at = self._oblivious_private_lookup(target, level, cursor)
            hit = tlb_hit and actual_level == level
            responses.append((level, respond_at, hit))

        success = tlb_hit and actual_level <= predicted_level
        complete_at = responses[-1][1]
        if success:
            self.stats.bump("obl_success")
        else:
            self.stats.bump("obl_fail")
        return OblLoadResponse(
            predicted_level=predicted_level,
            actual_level=actual_level,
            success=success,
            tlb_hit=tlb_hit,
            responses=tuple(responses),
            complete_at=complete_at,
        )

    def _oblivious_private_lookup(
        self, target: _Level, level: MemLevel, cursor: int
    ) -> tuple[int, int]:
        """Oblivious lookup of a private (monolithic) cache level.

        Returns ``(next_cursor, respond_at)``.  The request reserves every
        bank and a private MSHR slot; the response arrives after the level's
        full latency regardless of hit or miss.
        """
        name = "L1D" if level is MemLevel.L1 else "L2"
        grant = target.ports.grant(cursor)
        start = target.banks.reserve_all(grant, OBL_BANK_OCCUPANCY)
        self.observer.emit(start, f"{name}.bank", "reserve_all", OBL_BANK_OCCUPANCY)
        respond_at = start + target.config.latency
        # Private, address-independently chosen MSHR entry held for the
        # lookup's duration (Section VI-B2).
        target.mshrs.allocate(-1, start, respond_at, private=True)
        self.observer.emit(respond_at, name, "obl_respond", None)
        return respond_at, respond_at

    def _oblivious_l3_lookup(self, cursor: int) -> tuple[int, int]:
        """Oblivious L3 lookup: broadcast to all slices, wait for all."""
        starts = []
        for index, slice_level in enumerate(self.l3_slices):
            grant = slice_level.ports.grant(cursor)
            start = slice_level.banks.reserve_all(grant, OBL_BANK_OCCUPANCY)
            self.observer.emit(start, "L3.slice", "reserve_all", index)
            starts.append(start)
        # The L2<->L3 MSHR is deallocated when all responses arrive.
        respond_at = max(starts) + self.config.l3.latency + self._obl_l3_round_trip
        self.l2.mshrs.allocate(-1, cursor, respond_at, private=True)
        self.observer.emit(respond_at, "L3", "obl_respond", None)
        return respond_at, respond_at

    # ------------------------------------------------------------------ #
    # Coherence hooks
    # ------------------------------------------------------------------ #

    def external_invalidate(self, addr: int) -> bool:
        """Another agent invalidates a line (test/attack-harness hook).

        Removes the line from this core's private caches; returns True if it
        was present anywhere private (i.e. the core would have observed the
        invalidation through normal means).
        """
        line = self.line_of(addr)
        in_l1 = self.l1.array.invalidate(line)
        in_l2 = self.l2.array.invalidate(line)
        self.l3_slices[self.slice_of(line)].array.invalidate(line)
        self.directory.evict(self.core_id, line)
        return in_l1 or in_l2

    def warm(self, addrs, write: bool = False) -> None:
        """Pre-load lines into the hierarchy (test/workload setup helper).

        Fills the cache arrays directly, without going through the timing
        model — warm-up happens "before time zero", so it must not leave
        bank/port/MSHR residue that would skew the measured run.
        """
        for addr in addrs:
            line = self.line_of(addr)
            self.l1.array.fill(line, dirty=write)
            self.l2.array.fill(line, dirty=False)
            self.l3_slices[self.slice_of(line)].array.fill(line, dirty=False)
            self.tlb.access(addr)
        self.tlb.hits = 0
        self.tlb.misses = 0
