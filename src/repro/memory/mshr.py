"""Miss status holding registers.

A cache miss allocates an MSHR; a second miss on the same line *merges* into
the existing MSHR rather than allocating a new one (Section VI-B1).  Merging
is itself a covert channel — whether a miss merges depends on the address —
so an Obl-Ld must allocate a *private* MSHR chosen address-independently
(Section VI-B2, "Storage of outstanding Obl-Ld miss state"); pass
``private=True`` for that behaviour.

The file is time-indexed: allocations carry a release cycle (when the fill
will return), and capacity at cycle ``t`` counts only allocations whose
release is after ``t``.  This matches the eager-completion style of the
timing model, which computes each request's completion cycle at issue time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass(frozen=True)
class MshrAllocation:
    """Result of an allocation attempt."""

    granted_at: int  # cycle at which the MSHR became available
    merged: bool  # True if this miss merged into an outstanding one
    release: int = 0  # when the (possibly merged-into) entry's fill returns


class MshrFile:
    """A bounded set of outstanding misses with timed release."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = capacity
        self._releases: list[int] = []  # min-heap of release cycles
        self._by_line: dict[int, int] = {}  # line -> release cycle (mergeable entries)

    def _expire(self, now: int) -> None:
        while self._releases and self._releases[0] <= now:
            heapq.heappop(self._releases)

    def outstanding(self, now: int) -> int:
        self._expire(now)
        return len(self._releases)

    def allocate(
        self, line: int, now: int, release: int, private: bool = False
    ) -> MshrAllocation:
        """Allocate (or merge into) an MSHR for ``line``.

        Returns the cycle the entry was actually granted: if the file is full
        the request stalls until the earliest outstanding fill returns.
        ``private=True`` (the Obl-Ld rule) disables merging, so contention
        created by the entry follows only from the fact that an Obl-Ld is
        executing — never from its address.
        """
        self._expire(now)
        if not private:
            merged_release = self._by_line.get(line)
            if merged_release is not None and merged_release > now:
                return MshrAllocation(granted_at=now, merged=True, release=merged_release)
        granted = now
        while len(self._releases) >= self.capacity:
            granted = max(granted, self._releases[0])
            self._expire(granted)
        release = max(release, granted)
        heapq.heappush(self._releases, release)
        if not private:
            previous = self._by_line.get(line, 0)
            if release > previous:
                self._by_line[line] = release
        return MshrAllocation(granted_at=granted, merged=False, release=release)

    def would_merge(self, line: int, now: int) -> bool:
        release = self._by_line.get(line)
        return release is not None and release > now
