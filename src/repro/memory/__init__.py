"""The cache/memory hierarchy substrate.

This package implements the baseline memory subsystem of Section VI-B1:
private L1D/L1I and L2, a shared sliced L3, banked set-associative write-back
write-allocate caches with MSHRs, a mesh interconnect, a directory-based MESI
coherence protocol, a row-buffer DRAM model, and an L1 TLB.

Two access paths matter to the paper:

* the **normal** path (:meth:`MemoryHierarchy.load`): address-dependent bank
  selection, state-changing fills/LRU updates, MSHR sharing — every one of
  which is a covert channel;
* the **data-oblivious** path (:meth:`MemoryHierarchy.oblivious_load`):
  per-level tag *probes* that change no state, reserve *all* banks (and all
  L3 slices), allocate a private MSHR at an address-independent slot, and
  respond after a fixed per-level latency (Section VI-B2).

Every resource event either path produces is recorded on an
:class:`~repro.memory.observer.ResourceObserver`, which is how the security
tests check Definition 2 (equal resource interference for any two addresses).
"""

from repro.memory.cache import CacheArray
from repro.memory.dram import Dram
from repro.memory.tlb import Tlb
from repro.memory.mshr import MshrFile
from repro.memory.interconnect import Mesh
from repro.memory.coherence import Directory, CoherenceState
from repro.memory.observer import ResourceObserver, ResourceEvent
from repro.memory.hierarchy import LoadResponse, MemoryHierarchy, OblLoadResponse
from repro.memory.multicore import SharedMemorySystem

__all__ = [
    "CacheArray",
    "CoherenceState",
    "Directory",
    "Dram",
    "LoadResponse",
    "MemoryHierarchy",
    "Mesh",
    "MshrFile",
    "OblLoadResponse",
    "ResourceEvent",
    "ResourceObserver",
    "SharedMemorySystem",
    "Tlb",
]
