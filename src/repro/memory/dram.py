"""DRAM with per-bank open-row buffers.

Access latency depends on whether the request hits the currently open row of
its bank (Section VI-B1: "DRAM access latency is a function of recent and
outstanding requests").  This address-dependent timing is precisely why the
paper declines to build a DO variant for DRAM (Section VI-B2): hiding it
would require changes to the modules themselves.  Our SDO configurations
therefore *delay* loads predicted to be in DRAM instead (the
``dram_do_variant=False`` default), and this model is what makes that choice
consequential in the numbers.
"""

from __future__ import annotations

from repro.common.config import DramConfig


class Dram:
    """Row-buffer timing model.  One open row per bank."""

    def __init__(self, config: DramConfig, line_size: int = 64) -> None:
        self.config = config
        self.line_size = line_size
        self._open_rows: dict[int, int] = {}
        self.accesses = 0
        self.row_hits = 0

    @property
    def lines_per_row(self) -> int:
        return max(1, self.config.row_size // self.line_size)

    def bank_of(self, line: int) -> int:
        # Row-interleaved mapping: a whole row lives in one bank and
        # consecutive rows rotate across banks, so sequential streams enjoy
        # row-buffer hits — the address-dependent timing a DO DRAM variant
        # would have to hide.
        return (line // self.lines_per_row) % self.config.banks

    def row_of(self, line: int) -> int:
        return line // self.lines_per_row

    def access(self, line: int) -> int:
        """Access a line; returns latency and updates the open row."""
        bank = self.bank_of(line)
        row = self.row_of(line)
        self.accesses += 1
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
            latency = self.config.row_buffer_hit_latency
        else:
            latency = self.config.latency
            self._open_rows[bank] = row
        return latency

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self._open_rows.clear()
        self.accesses = 0
        self.row_hits = 0
