"""Directory-based MESI coherence.

Table I specifies a directory-based MESI protocol.  The SPEC evaluation is
single-threaded, so in the performance runs the directory is quiescent — but
the *mechanism* matters to SDO through memory consistency (Section V-C1): an
Obl-Ld may read a line that is not in the core's L1, so the core misses the
invalidation that would normally trigger a consistency squash.  SDO's answer
is InvisiSpec-style validation/exposure, and the tests exercise it by
injecting invalidations through this directory.

The directory tracks, per line, the set of sharers and the owner (if any core
holds the line Modified/Exclusive).  Transitions implement the standard MESI
state machine; each transition reports the set of cores that must be
invalidated, which the hierarchy turns into L1/L2 invalidations and — for
tracked speculative loads — pending consistency squashes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CoherenceState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class DirectoryEntry:
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None  # core holding M/E

    @property
    def state(self) -> CoherenceState:
        if self.owner is not None:
            return CoherenceState.MODIFIED  # M/E collapsed at the directory
        if self.sharers:
            return CoherenceState.SHARED
        return CoherenceState.INVALID


@dataclass(frozen=True)
class CoherenceResult:
    """Outcome of a directory transaction."""

    invalidated_cores: frozenset[int]
    downgraded_core: int | None  # owner forced M->S by a read
    granted: CoherenceState


class Directory:
    """One directory for the whole address space (co-located with L3 slices)."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self._entries: dict[int, DirectoryEntry] = {}
        self.invalidations_sent = 0
        self.downgrades_sent = 0

    def _entry(self, line: int) -> DirectoryEntry:
        if line not in self._entries:
            self._entries[line] = DirectoryEntry()
        return self._entries[line]

    def state_of(self, line: int) -> CoherenceState:
        entry = self._entries.get(line)
        return entry.state if entry else CoherenceState.INVALID

    def sharers_of(self, line: int) -> frozenset[int]:
        entry = self._entries.get(line)
        if entry is None:
            return frozenset()
        sharers = set(entry.sharers)
        if entry.owner is not None:
            sharers.add(entry.owner)
        return frozenset(sharers)

    def read(self, core: int, line: int) -> CoherenceResult:
        """Core requests read permission (GetS)."""
        self._check_core(core)
        entry = self._entry(line)
        downgraded = None
        if entry.owner is not None and entry.owner != core:
            # Owner is forced to share (M -> S with writeback).
            downgraded = entry.owner
            entry.sharers.add(entry.owner)
            entry.owner = None
            self.downgrades_sent += 1
        if entry.owner == core:
            return CoherenceResult(frozenset(), None, CoherenceState.MODIFIED)
        entry.sharers.add(core)
        if entry.sharers == {core}:
            # Sole sharer gets Exclusive.
            entry.owner = core
            entry.sharers.clear()
            return CoherenceResult(frozenset(), downgraded, CoherenceState.EXCLUSIVE)
        return CoherenceResult(frozenset(), downgraded, CoherenceState.SHARED)

    def write(self, core: int, line: int) -> CoherenceResult:
        """Core requests write permission (GetX)."""
        self._check_core(core)
        entry = self._entry(line)
        to_invalidate = set(entry.sharers)
        if entry.owner is not None and entry.owner != core:
            to_invalidate.add(entry.owner)
        to_invalidate.discard(core)
        entry.sharers.clear()
        entry.owner = core
        self.invalidations_sent += len(to_invalidate)
        return CoherenceResult(frozenset(to_invalidate), None, CoherenceState.MODIFIED)

    def evict(self, core: int, line: int) -> None:
        """Core silently drops (or writes back) a line."""
        self._check_core(core)
        entry = self._entries.get(line)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if entry.state is CoherenceState.INVALID:
            del self._entries[line]

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range 0..{self.num_cores - 1}")
