"""Mesh interconnect between cores, L3 slices and the memory controller.

Table I: a 4x2 mesh, 128-bit links, 1 cycle per hop.  The model is a
distance-latency network: the latency of a message is
``hops(src, dst) * hop_latency`` with X-Y routing (Manhattan distance).

Two properties matter to SDO:

* A normal L3 access goes to the *slice selected by the address hash* —
  the hop count is address-dependent, which leaks (the classic LLC-slice
  side channel).
* An oblivious L3 access is broadcast to **all** slices and completes when
  the farthest response returns (Section VI-B2, "LLC slice access"), so its
  latency is the fixed worst-case distance, independent of the address.
"""

from __future__ import annotations



class Mesh:
    """An ``nx x ny`` mesh with X-Y routing."""

    def __init__(self, dims: tuple[int, int], hop_latency: int = 1) -> None:
        self.nx, self.ny = dims
        if self.nx < 1 or self.ny < 1:
            raise ValueError(f"bad mesh dimensions {dims}")
        self.hop_latency = hop_latency

    @property
    def num_nodes(self) -> int:
        return self.nx * self.ny

    def coords(self, node: int) -> tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside {self.nx}x{self.ny} mesh")
        return node % self.nx, node // self.nx

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        """One-way message latency."""
        return self.hops(src, dst) * self.hop_latency

    def round_trip(self, src: int, dst: int) -> int:
        return 2 * self.latency(src, dst)

    def max_round_trip(self, src: int) -> int:
        """Worst-case round trip from ``src`` to any node.

        This is the fixed latency of a broadcast that waits for all
        responses — the oblivious L3 lookup.
        """
        return max(self.round_trip(src, dst) for dst in range(self.num_nodes))


def slice_of_line(line: int, num_slices: int) -> int:
    """The design-time hash mapping a line to its L3 slice.

    Commercial hashes XOR-fold the address; we do the same over the line
    number so that consecutive lines spread across slices.
    """
    value = line
    folded = 0
    while value:
        folded ^= value & (num_slices - 1) if num_slices & (num_slices - 1) == 0 else value % num_slices
        value //= max(2, num_slices)
    return folded % num_slices


def slice_node(slice_index: int, mesh: Mesh) -> int:
    """Placement of L3 slices on mesh nodes (one slice per node, wrapped)."""
    return slice_index % mesh.num_nodes
