"""Resource-usage observation: the attacker's view of the memory system.

The paper's Definition 2 requires that executing a DO variant with operands
``args`` and ``args'`` creates *the same hardware resource interference*.
Rather than asserting this by construction, we record every observable
resource event the timing model generates — bank reservations, port grants,
MSHR allocations, state-changing fills/evictions/LRU updates, response
timings, DRAM row activity — and let the security tests compare traces.

Events carry an ``address_dependent`` payload field: for normal accesses it
holds set/bank/slice indices (the leak); for oblivious accesses it must be
``None`` or a constant.  The non-interference checker simply asserts trace
equality across addresses, so even a mistakenly leaky field shows up as a
trace mismatch — the checker does not trust the flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class ResourceEvent:
    """One observable microarchitectural event."""

    cycle: int
    structure: str  # e.g. "L1D.bank", "L2.mshr", "L3.slice", "DRAM.row"
    action: str  # e.g. "reserve", "fill", "evict", "respond", "walk"
    detail: Any = None  # address-dependent payload (index, duration, ...)

    def __str__(self) -> str:
        detail = "" if self.detail is None else f" {self.detail}"
        return f"[{self.cycle}] {self.structure}.{self.action}{detail}"


class ResourceObserver:
    """Collects :class:`ResourceEvent` records.

    Disabled by default (performance runs pay one branch per event); the
    security harness enables it around the window under test.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: list[ResourceEvent] = []

    def emit(self, cycle: int, structure: str, action: str, detail: Any = None) -> None:
        if self.enabled:
            self.events.append(ResourceEvent(cycle, structure, action, detail))

    def clear(self) -> None:
        self.events.clear()

    def trace(self, structures: Iterable[str] | None = None) -> tuple[ResourceEvent, ...]:
        """The event trace, optionally filtered to structure-name prefixes."""
        if structures is None:
            return tuple(self.events)
        prefixes = tuple(structures)
        return tuple(
            event for event in self.events
            if any(event.structure.startswith(p) for p in prefixes)
        )

    def normalized(self, base_cycle: int | None = None) -> tuple[tuple[int, str, str, Any], ...]:
        """Trace with cycles re-based, for comparing runs started at
        different absolute times."""
        if not self.events:
            return ()
        base = self.events[0].cycle if base_cycle is None else base_cycle
        return tuple(
            (event.cycle - base, event.structure, event.action, event.detail)
            for event in self.events
        )
