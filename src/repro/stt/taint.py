"""The untaint frontier: STT's "fast untaint" mechanism.

A taint root (the sequence number of a speculative access instruction) is
*safe* — has reached its visibility point — when no squash-capable
instruction older than it remains unfinished.  Which instructions count as
squash-capable depends on the attack model (Section III):

* **Spectre**: only unresolved control-flow instructions.  A root untaints
  once every older branch has resolved (and had its resolution applied —
  under STT a tainted branch's resolution is itself delayed, which is what
  makes nested speculation compose).
* **Futuristic**: any instruction that could still squash for any reason —
  unresolved branches, loads that have not finished (including pending
  validations and pending Obl-Ld fail squashes), and fast-predicted FP
  transmitters whose prediction has not been checked.

The frontier is the minimum sequence number over that set; root ``r`` is
safe iff ``frontier >= r`` (the instruction *at* the frontier is not older
than itself).  STT performs untainting in a single cycle; we mirror that by
recomputing the frontier once per cycle via a lazily pruned min-heap.
"""

from __future__ import annotations

import heapq
import math

from repro.common.config import AttackModel
from repro.pipeline.uop import DynInst, OblState


def _branch_finished(uop: DynInst) -> bool:
    return uop.squashed or uop.resolved


def _load_finished(uop: DynInst) -> bool:
    if uop.squashed:
        return True
    if not uop.completed or uop.pending_squash:
        return False
    if uop.needs_validation and not uop.validation_done:
        return False
    # An Obl-Ld can still fail-squash until its safe point.
    return uop.obl_state is OblState.NONE or uop.safe


def _fp_finished(uop: DynInst) -> bool:
    if uop.squashed:
        return True
    if not uop.completed:
        return False
    return not uop.fp_predicted_fast or uop.safe


class UntaintFrontier:
    """Minimum unfinished squash-capable sequence number, per attack model."""

    def __init__(self, model: AttackModel) -> None:
        self.model = model
        self._heap: list[tuple[int, DynInst]] = []

    def register(self, uop: DynInst) -> None:
        """Called at rename for every potentially squash-capable uop."""
        if uop.is_branch:
            heapq.heappush(self._heap, (uop.seq, uop))
        elif self.model is AttackModel.FUTURISTIC and (
            uop.is_load or uop.is_fp_transmitter
        ):
            heapq.heappush(self._heap, (uop.seq, uop))

    @staticmethod
    def _finished(uop: DynInst) -> bool:
        if uop.is_branch:
            return _branch_finished(uop)
        if uop.is_load:
            return _load_finished(uop)
        return _fp_finished(uop)

    def value(self) -> float:
        """Current frontier (``math.inf`` when nothing can squash)."""
        while self._heap and self._finished(self._heap[0][1]):
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else math.inf

    def is_safe(self, root_seq: int | None) -> bool:
        """Has ``root_seq`` reached its visibility point?"""
        if root_seq is None:
            return True
        return self.value() >= root_seq

    def __len__(self) -> int:
        return len(self._heap)
