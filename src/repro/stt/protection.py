"""STT as a pipeline protection scheme (Table II: STT{ld}, STT{ld+fp})."""

from __future__ import annotations

from repro.common.config import AttackModel
from repro.common.stats import StatGroup
from repro.pipeline.protection import (
    FpIssueAction,
    IssueDecision,
    LoadIssueAction,
    ProtectionScheme,
)
from repro.pipeline.uop import DynInst
from repro.stt.taint import UntaintFrontier


class SttProtection(ProtectionScheme):
    """Delay-execution STT.

    * Tainted loads are delayed until their operands untaint (explicit
      channel rule for the load transmitter).
    * With ``fp_transmitters=True``, tainted fmul/fdiv/fsqrt are delayed too.
    * Branch resolution is delayed while the predicate is tainted
      (resolution-based implicit channel rule); predictor updates therefore
      only ever see untainted outcomes.
    """

    def __init__(
        self,
        attack_model: AttackModel = AttackModel.SPECTRE,
        fp_transmitters: bool = False,
    ) -> None:
        super().__init__()
        self.attack_model = attack_model
        self.fp_transmitters = fp_transmitters
        self.frontier = UntaintFrontier(attack_model)
        self.stats = StatGroup("stt")
        self._cached_frontier: float = float("inf")
        self.name = f"STT{{ld{'+fp' if fp_transmitters else ''}}}"

    # --- taint ---------------------------------------------------------- #

    def on_rename(self, uop: DynInst) -> None:
        prf = self.core.prf
        src_root = None
        for preg in uop.src_pregs:
            root = prf.taint_root[preg]
            if root is not None and (src_root is None or root > src_root):
                src_root = root
        uop.src_taint_root = src_root
        if uop.is_load:
            # Access instruction: output tainted with its own seq as the
            # youngest root of taint (it is younger than any source root).
            uop.taint_root = uop.seq
            self.stats.bump("access_taints")
        else:
            uop.taint_root = src_root
        if uop.dest_preg is not None:
            prf.taint_root[uop.dest_preg] = uop.taint_root
        self.frontier.register(uop)

    def begin_cycle(self, cycle: int) -> None:
        self._cached_frontier = self.frontier.value()

    def is_root_safe(self, root_seq: int | None) -> bool:
        if root_seq is None:
            return True
        return self._cached_frontier >= root_seq

    def sources_tainted(self, uop: DynInst) -> bool:
        return not self.is_root_safe(uop.src_taint_root)

    def output_safe(self, uop: DynInst) -> bool:
        """Event C: the uop's operands (e.g. a load's address) untainted."""
        return self.is_root_safe(uop.src_taint_root)

    # --- issue policy ---------------------------------------------------- #

    def load_issue_decision(self, uop: DynInst) -> IssueDecision:
        if self.sources_tainted(uop):
            return IssueDecision(LoadIssueAction.DELAY)
        return IssueDecision(LoadIssueAction.NORMAL)

    def fp_issue_decision(self, uop: DynInst) -> FpIssueAction:
        if self.fp_transmitters and self.sources_tainted(uop):
            return FpIssueAction.DELAY
        return FpIssueAction.NORMAL

    # --- implicit channels ------------------------------------------------ #

    def may_resolve_branch(self, uop: DynInst) -> bool:
        return not self.sources_tainted(uop)
