"""Speculative Taint Tracking (STT), the framework SDO builds on.

Implements the protection of Yu et al., MICRO'19 (Section III of the SDO
paper):

* **taint** assignment at rename: the output of a speculative access
  instruction (load) is tainted with the load's own sequence number as its
  *youngest root of taint*; non-access outputs inherit the youngest root
  among their sources;
* **untaint** via a per-cycle squash frontier, with the *Spectre* model
  (roots untaint when all older control-flow instructions have resolved) and
  the *Futuristic* model (roots untaint when nothing older can squash at
  all);
* **explicit-channel rule**: a transmitter (load; plus fmul/fdiv/fsqrt under
  ``STT{ld+fp}``) with tainted operands is delayed until they untaint;
* **implicit-channel rule**: branch resolution (squash + predictor update)
  is delayed until the branch's predicate untaints, and predictor state is
  only ever updated with untainted data.
"""

from repro.stt.taint import UntaintFrontier
from repro.stt.protection import SttProtection

__all__ = ["SttProtection", "UntaintFrontier"]
