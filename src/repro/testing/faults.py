"""Deterministic fault injection for the sweep engine.

The engine's fault tolerance — crash isolation, wall-clock timeout kills,
retry with backoff, failure classification — must be testable without a
real simulator bug.  This module wraps :func:`repro.sim.engine.execute`
with a plan that makes chosen cells crash, hang, or run slowly, on chosen
attempts, deterministically::

    plan = FaultPlan(
        {
            "victim": FaultSpec("crash"),             # crashes every attempt
            "flaky/Hybrid": FaultSpec("crash", times=1),  # fails once, then OK
            "wedged": FaultSpec("hang"),              # sleeps until killed
            "molasses": FaultSpec("slow", seconds=0.2),   # slow but correct
        },
        state_dir=tmp_path,
    )
    with inject(plan):
        outcomes = session.run_many(requests)

Faults are keyed by ``"<workload>"`` or, more specifically,
``"<workload>/<config>"`` (the latter wins).  ``times`` limits how many
*attempts* inject the fault before the cell reverts to real execution —
that is how retry-then-succeed flakiness is modelled.  Attempt counting
works across process boundaries: each injected attempt claims a marker
file in ``state_dir`` with an exclusive create, so forked pool workers,
killed-and-respawned workers, and the in-process serial path all share one
counter.

The patch is installed by plain module-attribute assignment, which the
engine's fork-started workers inherit via copy-on-write.  On platforms
without ``fork`` (Windows/macOS-spawn) the patch does not reach pool
workers — tests that need the pool skip there, exactly like the existing
monkeypatch-based engine tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.sim.api import RunMetrics, RunRequest

#: The injectable fault kinds.
CRASH = "crash"
HANG = "hang"
SLOW = "slow"
FAULT_KINDS = frozenset({CRASH, HANG, SLOW})


class InjectedCrash(RuntimeError):
    """The exception an injected ``crash`` raises — a distinct type so
    tests can assert the failure really came from the harness."""


@dataclass(frozen=True)
class FaultSpec:
    """One cell's fault behaviour.

    ``kind``
        ``crash`` raises :class:`InjectedCrash`; ``hang`` sleeps for
        ``seconds`` (default: effectively forever — the engine's timeout
        is expected to kill the worker first) and raises if it survives;
        ``slow`` sleeps ``seconds`` and then runs the real simulation.
    ``times``
        How many attempts inject the fault before the cell reverts to
        real execution; negative means every attempt.  ``times=2`` with a
        retrying engine models a flaky cell that succeeds on attempt 3.
    ``seconds``
        Sleep duration for ``hang``/``slow``.
    """

    kind: str
    times: int = -1
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "times": self.times, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            times=int(payload.get("times", -1)),
            seconds=float(payload.get("seconds", 3600.0)),
        )


class FaultPlan:
    """Maps sweep cells to :class:`FaultSpec` with cross-process counting.

    ``faults`` keys are ``"<workload>"`` or ``"<workload>/<config>"``; the
    more specific key wins.  ``state_dir`` holds the attempt-claim marker
    files and must be shared by every process of the sweep (a pytest
    ``tmp_path`` is ideal).
    """

    def __init__(self, faults: dict[str, FaultSpec], state_dir: str | Path) -> None:
        self.faults = dict(faults)
        self.state_dir = Path(state_dir)

    def lookup(self, request: RunRequest) -> FaultSpec | None:
        workload = request.workload.name
        specific = self.faults.get(f"{workload}/{request.config.name}")
        if specific is not None:
            return specific
        return self.faults.get(workload)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form, so a plan can be handed to *other processes* —
        the fabric e2e tests write one to a file and point worker agents at
        it via the ``REPRO_FAULT_PLAN`` environment variable.  ``state_dir``
        travels too: the cross-process attempt counter must be the same
        directory in every process of the sweep."""
        return {
            "faults": {key: spec.to_dict() for key, spec in self.faults.items()},
            "state_dir": str(self.state_dir),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            {
                key: FaultSpec.from_dict(spec)
                for key, spec in payload["faults"].items()
            },
            state_dir=payload["state_dir"],
        )

    def claim(self, request: RunRequest, spec: FaultSpec) -> bool:
        """Atomically claim one injected attempt for this cell.

        Returns ``False`` once ``spec.times`` attempts have been claimed
        (the cell then executes for real).  The claim is an exclusive file
        create, so concurrent workers and respawned processes agree on the
        count without locks.
        """
        if spec.times < 0:
            return True
        slug = (
            f"{request.workload.name}__{request.config.name}__"
            f"{request.attack_model.value}"
        ).replace("/", "_")
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for attempt in range(spec.times):
            marker = self.state_dir / f"{slug}.attempt{attempt}"
            try:
                with open(marker, "x") as fh:
                    fh.write(f"{time.time()}\n")
                return True
            except FileExistsError:
                continue
        return False


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Patch :func:`repro.sim.engine.execute` to follow ``plan``.

    Cells without a fault (or whose fault budget is spent) run the real
    simulation unchanged.  The patch is process-wide for the duration of
    the ``with`` block and is inherited by fork-started pool workers.
    """
    import repro.sim.engine as engine_module

    original = engine_module.execute

    def faulty_execute(request: RunRequest) -> RunMetrics:
        spec = plan.lookup(request)
        if spec is not None and plan.claim(request, spec):
            if spec.kind == CRASH:
                raise InjectedCrash(
                    f"injected crash for {request.workload.name}/"
                    f"{request.config.name}"
                )
            if spec.kind == HANG:
                deadline = time.monotonic() + spec.seconds
                while time.monotonic() < deadline:
                    time.sleep(0.05)
                raise InjectedCrash(
                    f"injected hang for {request.workload.name} survived "
                    f"{spec.seconds:g}s without being killed"
                )
            time.sleep(spec.seconds)  # SLOW: delayed but correct
        return original(request)

    engine_module.execute = faulty_execute
    try:
        yield plan
    finally:
        engine_module.execute = original
