"""Test support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
the CI suite uses to exercise the sweep engine's fault tolerance (crashes,
hangs, slow runs, retry-then-succeed flakiness) without ever relying on a
real bug.
"""

from repro.testing.faults import FaultPlan, FaultSpec, InjectedCrash, inject

__all__ = ["FaultPlan", "FaultSpec", "InjectedCrash", "inject"]
