"""Machine configuration.

The defaults in :class:`MachineConfig` reproduce Table I of the paper
("Simulated architecture parameters"):

=====================  =========================================================
Pipeline               8 fetch/decode/issue/commit, 32/32 SQ/LQ entries,
                       192 ROB, 16 MSHRs, tournament branch predictor
L1 I-Cache             32KB, 64B line, 4-way, 2-cycle latency
L1 D-Cache             32KB, 64B line, 8-way, 2-cycle latency
L2 Cache               256KB, 64B line, 8-way, 12-cycle latency
L3 Cache               2MB, 64B line, 8-way, 40-cycle latency
Network                4x2 mesh, 128b link width, 1 cycle latency per hop
Coherence protocol     directory-based MESI
DRAM                   50ns latency after L2 (100 cycles at the 2GHz we assume)
=====================  =========================================================

Protection configuration (:class:`ProtectionConfig`) selects between the
design variants of Table II: ``Unsafe``, ``STT{ld}``, ``STT{ld+fp}``, and the
SDO variants (``Static L1/L2/L3``, ``Hybrid``, ``Perfect``), each under either
the *Spectre* or *Futuristic* attack model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace


def _scalar_fields_to_dict(obj) -> dict[str, object]:
    """Serialize a flat dataclass of JSON-native scalars (wire helper)."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


def _scalar_fields_from_dict(cls, payload: dict):
    """Inverse of :func:`_scalar_fields_to_dict`.

    Unknown payload keys are ignored (forward compatibility: an old client
    can deserialize a newer scheduler's message); missing keys fall back to
    the dataclass defaults.
    """
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in names})


class MemLevel(enum.IntEnum):
    """Levels of the memory hierarchy, ordered nearest-first.

    The integer values matter: the location predictor predicts a level ``j``
    and an Obl-Ld looks up every level ``<= j`` (Section V-B).  ``i <= j``
    means the prediction was *accurate*; ``i == j`` means it was also
    *precise* (Section V-D).
    """

    L1 = 1
    L2 = 2
    L3 = 3
    DRAM = 4

    @property
    def pretty(self) -> str:
        return {1: "L1", 2: "L2", 3: "L3", 4: "DRAM"}[int(self)]


class AttackModel(enum.Enum):
    """STT attack models (Section III).

    * ``SPECTRE`` covers control-flow speculation only: an access
      instruction's output untaints once all older control-flow instructions
      have resolved.
    * ``FUTURISTIC`` covers all speculation: the output untaints only once the
      access instruction can no longer be squashed for any reason.
    """

    SPECTRE = "spectre"
    FUTURISTIC = "futuristic"


class ProtectionKind(enum.Enum):
    """Top-level protection scheme (Table II rows, plus the competing
    published baselines evaluated alongside them)."""

    UNSAFE = "unsafe"
    STT = "stt"
    STT_SDO = "stt+sdo"
    #: SpecBox-style label-based transparent speculation (arXiv 2107.08367).
    SPECBOX = "specbox"
    #: Delay-on-miss / InvisiSpec-style: speculative L1 misses are delayed
    #: to the visibility point, speculative L1 hits proceed.
    DELAY_ON_MISS = "delay-on-miss"
    #: Fence-on-every-load: every speculative load is delayed to its
    #: visibility point — the worst-case conservative baseline.
    FENCE = "fence"


class PredictorKind(enum.Enum):
    """Location-predictor flavours evaluated in the paper (Table II)."""

    STATIC_L1 = "static-l1"
    STATIC_L2 = "static-l2"
    STATIC_L3 = "static-l3"
    HYBRID = "hybrid"
    PERFECT = "perfect"


@dataclass(frozen=True)
class CacheConfig:
    """One cache level.  Sizes in bytes."""

    name: str
    size: int
    line_size: int
    assoc: int
    latency: int
    banks: int = 4
    mshrs: int = 16
    ports: int = 2
    slices: int = 1  # >1 only for the shared, sliced L3

    def __post_init__(self) -> None:
        if self.size % (self.line_size * self.assoc) != 0:
            raise ValueError(
                f"{self.name}: size {self.size} not divisible by "
                f"line_size*assoc = {self.line_size * self.assoc}"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return _scalar_fields_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheConfig":
        return _scalar_fields_from_dict(cls, payload)


@dataclass(frozen=True)
class TlbConfig:
    """L1 TLB parameters.  SDO only ever looks up the L1 TLB (Section V-B).

    The default uses 64KB pages (large-page mappings for data regions, as
    SPEC-class memory-bound workloads commonly get from the OS), giving the
    128-entry TLB an 8MB reach.  The paper's design leans on L1 TLB miss
    rates being low; with 4KB pages and scatter access our synthetic tables
    would overwhelm the TLB and every Obl-Ld would fail on the DO TLB probe,
    which is a TLB artifact rather than the phenomenon under study.  The
    ``tlb_pressure`` ablation benchmark flips this back to 4KB to quantify
    exactly that effect.
    """

    entries: int = 128
    assoc: int = 8
    page_size: int = 65536
    hit_latency: int = 1
    walk_latency: int = 30

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return _scalar_fields_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TlbConfig":
        return _scalar_fields_from_dict(cls, payload)


@dataclass(frozen=True)
class DramConfig:
    """DRAM behind the L3.

    The paper specifies "50ns latency after L2"; at our nominal 2GHz that is
    100 cycles added on top of the L2 round trip.  The row-buffer model gives
    a discount on consecutive hits to an open row, which is exactly the
    address-dependent timing a DO DRAM variant would have to hide
    (Section VI-B2) — and the reason the paper chooses *not* to build one.
    """

    latency: int = 100
    row_buffer_hit_latency: int = 60
    row_size: int = 8192
    banks: int = 8

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return _scalar_fields_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "DramConfig":
        return _scalar_fields_from_dict(cls, payload)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table I, "Pipeline" row)."""

    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 192
    lq_entries: int = 32
    sq_entries: int = 32
    iq_entries: int = 64
    phys_int_regs: int = 300
    phys_fp_regs: int = 300
    fetch_to_decode_latency: int = 3
    mispredict_penalty: int = 2  # redirect bubble on top of refill latency
    int_alu_units: int = 6
    int_mul_units: int = 2
    fp_units: int = 4
    mem_ports: int = 2

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return _scalar_fields_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CoreConfig":
        return _scalar_fields_from_dict(cls, payload)


@dataclass(frozen=True)
class ProtectionConfig:
    """Selects a Table II design variant + attack model.

    ``fp_transmitters`` distinguishes STT{ld} from STT{ld+fp}: when true,
    fmul/fdiv/fsqrt micro-ops are treated as transmitters too.  For SDO
    configurations ``fp_transmitters`` enables the Obl-FP operation (statically
    predicting normal operands) rather than delaying.
    """

    kind: ProtectionKind = ProtectionKind.UNSAFE
    attack_model: AttackModel = AttackModel.SPECTRE
    predictor: PredictorKind | None = None
    fp_transmitters: bool = False
    # Section VI-B2: no DO variant for DRAM; a DRAM prediction reverts to
    # STT-style delay.  Kept as a knob so the ablation bench can flip it.
    dram_do_variant: bool = False
    # Section V-C2 "Early forwarding from wait buffer" optimization.
    early_forwarding: bool = True

    def __post_init__(self) -> None:
        if self.kind is ProtectionKind.STT_SDO and self.predictor is None:
            raise ValueError("STT+SDO configuration requires a predictor kind")
        if self.kind is not ProtectionKind.STT_SDO and self.predictor is not None:
            raise ValueError(f"{self.kind} does not take a predictor")

    @property
    def label(self) -> str:
        """Human-readable Table II style label."""
        if self.kind is ProtectionKind.UNSAFE:
            return "Unsafe"
        if self.kind is ProtectionKind.SPECBOX:
            return "SpecBox"
        if self.kind is ProtectionKind.DELAY_ON_MISS:
            return "DelayOnMiss"
        if self.kind is ProtectionKind.FENCE:
            return "Fence"
        suffix = "{ld+fp}" if self.fp_transmitters else "{ld}"
        if self.kind is ProtectionKind.STT:
            return f"STT{suffix}"
        names = {
            PredictorKind.STATIC_L1: "Static L1",
            PredictorKind.STATIC_L2: "Static L2",
            PredictorKind.STATIC_L3: "Static L3",
            PredictorKind.HYBRID: "Hybrid",
            PredictorKind.PERFECT: "Perfect",
        }
        return names[self.predictor]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind.value,
            "attack_model": self.attack_model.value,
            "predictor": self.predictor.value if self.predictor else None,
            "fp_transmitters": self.fp_transmitters,
            "dram_do_variant": self.dram_do_variant,
            "early_forwarding": self.early_forwarding,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProtectionConfig":
        predictor = payload.get("predictor")
        return cls(
            kind=ProtectionKind(payload["kind"]),
            attack_model=AttackModel(payload["attack_model"]),
            predictor=PredictorKind(predictor) if predictor else None,
            fp_transmitters=payload.get("fp_transmitters", False),
            dram_do_variant=payload.get("dram_do_variant", False),
            early_forwarding=payload.get("early_forwarding", True),
        )


def _default_l1i() -> CacheConfig:
    return CacheConfig("L1I", 32 * 1024, 64, 4, 2)


def _default_l1d() -> CacheConfig:
    return CacheConfig("L1D", 32 * 1024, 64, 8, 2, banks=4, ports=2)


def _default_l2() -> CacheConfig:
    return CacheConfig("L2", 256 * 1024, 64, 8, 12, banks=8)


def _default_l3() -> CacheConfig:
    return CacheConfig("L3", 2 * 1024 * 1024, 64, 8, 40, banks=8, slices=8)


@dataclass(frozen=True)
class MachineConfig:
    """The full simulated machine: Table I defaults."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=_default_l1i)
    l1d: CacheConfig = field(default_factory=_default_l1d)
    l2: CacheConfig = field(default_factory=_default_l2)
    l3: CacheConfig = field(default_factory=_default_l3)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    mesh_hop_latency: int = 1
    mesh_dims: tuple[int, int] = (4, 2)

    def with_protection(self, protection: ProtectionConfig) -> "MachineConfig":
        """Return a copy of this machine with a different protection scheme."""
        return replace(self, protection=protection)

    @property
    def line_size(self) -> int:
        return self.l1d.line_size

    def level_latency(self, level: MemLevel) -> int:
        """Round-trip latency of a *hit* at ``level``, as seen by the core.

        Lookup latencies accumulate down the hierarchy: a hit in the L2 pays
        the L1 lookup plus the L2 lookup, and so on.  DRAM pays the whole
        cache stack plus the DRAM access itself.
        """
        if level is MemLevel.L1:
            return self.l1d.latency
        if level is MemLevel.L2:
            return self.l1d.latency + self.l2.latency
        if level is MemLevel.L3:
            return self.l1d.latency + self.l2.latency + self.l3.latency
        return (
            self.l1d.latency + self.l2.latency + self.l3.latency + self.dram.latency
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`).

        This is the machine's wire form for the sweep fabric: every nested
        config serializes through its own ``to_dict`` and the result is pure
        JSON scalars/containers.
        """
        return {
            "core": self.core.to_dict(),
            "l1i": self.l1i.to_dict(),
            "l1d": self.l1d.to_dict(),
            "l2": self.l2.to_dict(),
            "l3": self.l3.to_dict(),
            "tlb": self.tlb.to_dict(),
            "dram": self.dram.to_dict(),
            "protection": self.protection.to_dict(),
            "mesh_hop_latency": self.mesh_hop_latency,
            "mesh_dims": list(self.mesh_dims),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MachineConfig":
        return cls(
            core=CoreConfig.from_dict(payload["core"]),
            l1i=CacheConfig.from_dict(payload["l1i"]),
            l1d=CacheConfig.from_dict(payload["l1d"]),
            l2=CacheConfig.from_dict(payload["l2"]),
            l3=CacheConfig.from_dict(payload["l3"]),
            tlb=TlbConfig.from_dict(payload["tlb"]),
            dram=DramConfig.from_dict(payload["dram"]),
            protection=ProtectionConfig.from_dict(payload["protection"]),
            mesh_hop_latency=payload.get("mesh_hop_latency", 1),
            mesh_dims=tuple(payload.get("mesh_dims", (4, 2))),
        )
