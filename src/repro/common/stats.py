"""Statistics plumbing.

Every subsystem owns a :class:`StatGroup`, a thin namespaced counter bag.
Groups can be nested; :meth:`StatGroup.as_dict` flattens the hierarchy into
``"group.sub.counter" -> value`` pairs, which is what the experiment harness
(``repro.eval``) consumes.

Counters are created on first touch, so adding instrumentation never requires
a schema change — but :meth:`StatGroup.freeze` is available for tests that
want to assert no counter is created past setup (typo protection).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class Histogram:
    """A sparse integer histogram with mean/percentile helpers."""

    def __init__(self) -> None:
        self._buckets: dict[int, int] = defaultdict(int)
        self._count = 0
        self._total = 0

    def add(self, value: int, weight: int = 1) -> None:
        self._buckets[value] += weight
        self._count += weight
        self._total += value * weight

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> int:
        """Return the smallest value with at least ``p`` fraction of mass below it."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {p}")
        if not self._count:
            return 0
        target = p * self._count
        seen = 0
        for value in sorted(self._buckets):
            seen += self._buckets[value]
            if seen >= target:
                return value
        return max(self._buckets)

    def items(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._buckets.items()))

    def __repr__(self) -> str:
        return f"Histogram(count={self._count}, mean={self.mean:.2f})"


class StatGroup:
    """Namespaced counters.

    >>> stats = StatGroup("core")
    >>> stats.bump("cycles")
    >>> stats.bump("cycles", 9)
    >>> stats["cycles"]
    10
    >>> mem = stats.group("mem")
    >>> mem.bump("loads")
    >>> stats.as_dict()
    {'core.cycles': 10, 'core.mem.loads': 1}
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: dict[str, int] = defaultdict(int)
        self._histograms: dict[str, Histogram] = {}
        self._children: dict[str, StatGroup] = {}
        self._frozen = False

    def bump(self, counter: str, amount: int = 1) -> None:
        if self._frozen and counter not in self._counters:
            raise KeyError(f"stat group {self.name!r} is frozen; unknown counter {counter!r}")
        self._counters[counter] += amount

    def set(self, counter: str, value: int) -> None:
        if self._frozen and counter not in self._counters:
            raise KeyError(f"stat group {self.name!r} is frozen; unknown counter {counter!r}")
        self._counters[counter] = value

    def __getitem__(self, counter: str) -> int:
        return self._counters.get(counter, 0)

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            if self._frozen:
                raise KeyError(f"stat group {self.name!r} is frozen; unknown histogram {name!r}")
            self._histograms[name] = Histogram()
        return self._histograms[name]

    def group(self, name: str) -> "StatGroup":
        if name not in self._children:
            if self._frozen:
                raise KeyError(f"stat group {self.name!r} is frozen; unknown child {name!r}")
            self._children[name] = StatGroup(name)
        return self._children[name]

    def freeze(self) -> None:
        """Disallow creation of new counters/groups (typo protection in tests)."""
        self._frozen = True
        for child in self._children.values():
            child.freeze()

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        for child in self._children.values():
            child.reset()

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Flatten to ``"a.b.counter" -> value``; histograms export mean/count."""
        base = f"{prefix}{self.name}."
        out: dict[str, float] = {}
        for key in sorted(self._counters):
            out[base + key] = self._counters[key]
        for key, hist in sorted(self._histograms.items()):
            out[f"{base}{key}.mean"] = hist.mean
            out[f"{base}{key}.count"] = hist.count
        for child_name in sorted(self._children):
            out.update(self._children[child_name].as_dict(prefix=base))
        return out

    def __repr__(self) -> str:
        return f"StatGroup({self.name!r}, counters={dict(self._counters)!r})"
