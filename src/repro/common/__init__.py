"""Shared infrastructure: configuration, statistics, and common types.

Everything in this package is substrate-neutral: it knows nothing about
pipelines, caches, STT, or SDO.  It exists so that the rest of the simulator
can agree on how machines are parameterised (:class:`MachineConfig`, which
mirrors Table I of the paper) and how results are counted
(:class:`StatGroup`).
"""

from repro.common.config import (
    AttackModel,
    CacheConfig,
    CoreConfig,
    DramConfig,
    MachineConfig,
    MemLevel,
    ProtectionConfig,
    ProtectionKind,
    PredictorKind,
    TlbConfig,
)
from repro.common.stats import StatGroup, Histogram

__all__ = [
    "AttackModel",
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "Histogram",
    "MachineConfig",
    "MemLevel",
    "PredictorKind",
    "ProtectionConfig",
    "ProtectionKind",
    "StatGroup",
    "TlbConfig",
]
