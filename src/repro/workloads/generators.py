"""Parameterised kernel generators.

Each generator emits assembly for the micro-ISA plus an initial memory
image and warm-up address list, wrapped in a :class:`Workload`.

The generators are built around the access patterns that drive STT/SDO
behaviour (see DESIGN.md §4 "shape targets"):

* ``make_indirect_stream`` — the central pattern: a strided index load feeds
  a scattered table load, and a branch tests the loaded value.  Under STT
  the value branch keeps the next iteration's table load tainted, which
  serialises what an insecure core overlaps (memory-level parallelism
  collapse).  The ``table_words`` knob sets where the tainted loads hit
  (L1/L2/L3/DRAM), which is exactly what the location predictor must learn.
* ``make_pointer_chase`` — serial chasing: dataflow already serialises, so
  STT overhead is moderate; models linked-list/tree traversal.
* ``make_stream_kernel`` — sequential streaming: one L1 miss every
  ``line_size/8`` accesses — the loop-predictor pattern (Section V-D #2).
* ``make_hash_probe`` — hashed probes with compare-and-rehash branches.
* ``make_fp_dense`` / ``make_fp_stream`` — FP transmitter (fmul/fdiv/fsqrt)
  pressure with a controllable subnormal fraction (the Obl-FP fail knob).
* ``make_compute_kernel`` — integer ILP with computed branches; the
  no-memory-pressure control.
* ``make_stride_reuse`` / ``make_mixed_kernel`` — blocked reuse and a
  mixture, for the middle of the spectrum.

All addresses are 8-byte-stride word addresses; a 64-byte line holds 8
words.
"""

from __future__ import annotations

import random

from repro.isa.assembler import assemble
from repro.workloads.workload import Workload

WORD = 8
LINE_WORDS = 8  # 64B line / 8B word

# Address-space layout bases (bytes), far apart so regions never collide.
TABLE_BASE = 1 << 22
INDEX_BASE = 1 << 26
OUTPUT_BASE = 1 << 28
AUX_BASE = 3 << 26

#: A value below the subnormal threshold (see repro.isa.instructions).
SUBNORMAL_VALUE = 1e-40


def _warm_region(base: int, words: int) -> tuple[int, ...]:
    """One address per line across a region."""
    return tuple(base + WORD * i for i in range(0, words, LINE_WORDS))


def _pad_block(pad_ops: int) -> str:
    """Independent ALU work (ILP padding) to dilute memory-system effects.

    Uses registers r20-r23, which no generator's main dataflow touches.
    """
    lines = ["        li r20, 17"]
    for i in range(pad_ops):
        reg = 21 + (i % 3)
        lines.append(f"        mul r{reg}, r{reg}, r20")
        lines.append(f"        addi r{reg}, r{reg}, {i + 1}")
    return "\n".join(lines[1:]) if pad_ops else ""


def make_indirect_stream(
    name: str,
    *,
    table_words: int,
    iterations: int,
    branch_taken_prob: float = 0.5,
    unroll: int = 1,
    warm_table: bool = True,
    pad_ops: int = 0,
    seed: int = 0,
    description: str = "",
) -> Workload:
    """idx -> table -> value-branch, the MLP-sensitive pattern.

    ``table_words`` controls residence of the tainted loads: 2048 (16KB) is
    L1-resident, 16384 (128KB) L2, 131072 (1MB) L3, and >=524288 (4MB) with
    ``warm_table=False`` is effectively DRAM.  ``pad_ops`` adds independent
    ALU work per iteration, diluting the memory-bound fraction (real
    programs are not pure access loops).
    """
    rng = random.Random(seed)
    memory: dict[int, int | float] = {}
    threshold = int(branch_taken_prob * 1000)
    total_indices = iterations * unroll
    for i in range(total_indices):
        memory[INDEX_BASE + WORD * i] = rng.randrange(table_words)
    for i in range(0, table_words, 1):
        memory[TABLE_BASE + WORD * i] = rng.randrange(1000)
    # `unroll` independent indirect loads share one value branch: only a
    # fraction of loads sit immediately behind a data-dependent branch, as
    # in real code where compilers hoist and most branches are on clean
    # induction state.
    unrolled = []
    for u in range(unroll):
        index_base = INDEX_BASE + WORD * iterations * u
        unrolled.append(f"""
        shl r9, r1, r12
        load r5, r9, {index_base}     ; idx[{u}*n + i] (strided, fast)
        shl r10, r5, r12
        load r6, r10, {TABLE_BASE}    ; table lookup (tainted under branches)
        add r3, r3, r6""")
    body = "".join(unrolled)
    source = f"""
        li r1, 0                 ; i
        li r2, {iterations}
        li r7, {threshold}
        li r12, 3
        li r20, 17
    loop:{body}
{_pad_block(pad_ops)}
        blt r6, r7, taken        ; value-dependent branch (last lookup)
        add r3, r3, r6
        jmp merge
    taken:
        sub r3, r3, r6
    merge:
        addi r1, r1, 1
        blt r1, r2, loop
        store r3, r0, {OUTPUT_BASE}
        halt
    """
    warm = _warm_region(INDEX_BASE, total_indices)
    if warm_table:
        warm += _warm_region(TABLE_BASE, table_words)
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm,
        description=description or f"indirect stream over {table_words} words",
    )


def make_pointer_chase(
    name: str,
    *,
    nodes: int,
    iterations: int,
    value_branch: bool = True,
    warm_table: bool = True,
    pad_ops: int = 0,
    seed: int = 0,
    description: str = "",
) -> Workload:
    """Serial pointer chase: node = {value, next}, 16 bytes."""
    rng = random.Random(seed)
    permutation = list(range(nodes))
    rng.shuffle(permutation)
    memory: dict[int, int | float] = {}
    node_addr = [TABLE_BASE + 16 * i for i in range(nodes)]
    for i in range(nodes):
        memory[node_addr[i]] = rng.randrange(1000)  # value
        memory[node_addr[i] + 8] = node_addr[permutation[i]]  # next
    branch_block = """
        blt r5, r7, chase
        add r3, r3, r5
    chase:
    """ if value_branch else ""
    source = f"""
        li r1, {node_addr[0]}
        li r2, 0
        li r4, {iterations}
        li r7, 500
        li r20, 17
    loop:
        load r5, r1, 0           ; node->value
        {branch_block}
        load r1, r1, 8           ; node->next (loop-carried chase)
{_pad_block(pad_ops)}
        addi r2, r2, 1
        blt r2, r4, loop
        store r1, r0, {OUTPUT_BASE}
        halt
    """
    warm = tuple(a for i in range(0, nodes, 4) for a in (node_addr[i],)) if warm_table else ()
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm,
        description=description or f"pointer chase over {nodes} nodes",
    )


def make_hash_probe(
    name: str,
    *,
    buckets: int,
    iterations: int,
    warm_table: bool = True,
    pad_ops: int = 0,
    seed: int = 0,
    description: str = "",
) -> Workload:
    """Hash probing: key (strided) -> hash -> bucket load -> compare."""
    rng = random.Random(seed)
    memory: dict[int, int | float] = {}
    for i in range(iterations):
        memory[INDEX_BASE + WORD * i] = rng.randrange(1 << 30)
    for i in range(buckets):
        memory[TABLE_BASE + WORD * i] = rng.randrange(1 << 30)
    mask = buckets - 1
    if buckets & mask:
        raise ValueError("buckets must be a power of two")
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r11, 2654435761
        li r12, 3
        li r20, 17
    loop:
        shl r9, r1, r12
        load r5, r9, {INDEX_BASE}      ; key (strided)
        mul r6, r5, r11                ; hash it (delays the address)
        andi r6, r6, {mask}
        shl r6, r6, r12
        load r8, r6, {TABLE_BASE}      ; bucket probe (tainted)
{_pad_block(pad_ops)}
        beq r8, r5, hit                ; compare-with-key branch
        addi r6, r6, 8
        andi r6, r6, {mask * WORD}
        load r8, r6, {TABLE_BASE}      ; rehash probe (tainted, dependent)
        add r3, r3, r8
    hit:
        addi r1, r1, 1
        blt r1, r2, loop
        store r3, r0, {OUTPUT_BASE}
        halt
    """
    warm = _warm_region(INDEX_BASE, iterations)
    if warm_table:
        warm += _warm_region(TABLE_BASE, buckets)
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm,
        description=description or f"hash probe over {buckets} buckets",
    )


def make_stream_kernel(
    name: str,
    *,
    words: int,
    iterations: int | None = None,
    warm: bool = False,
    description: str = "",
) -> Workload:
    """Sequential streaming: b[i] = a[i] + s — one L1 miss per 8 accesses."""
    count = iterations if iterations is not None else words
    memory: dict[int, int | float] = {
        TABLE_BASE + WORD * i: i % 251 for i in range(words)
    }
    source = f"""
        li r1, 0
        li r2, {count}
        li r12, 3
    loop:
        shl r9, r1, r12
        load r5, r9, {TABLE_BASE}      ; a[i], strided
        add r3, r3, r5
        load r6, r5, {TABLE_BASE}      ; a[a[i]] — dependent, near-stride
        blt r6, r3, skip               ; value branch keeps taint live
        add r3, r3, r6
    skip:
        store r3, r9, {OUTPUT_BASE}
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    warm_list = _warm_region(TABLE_BASE, min(words, 4096)) if warm else ()
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm_list,
        description=description or f"stream over {words} words",
    )


def make_stride_reuse(
    name: str,
    *,
    block_words: int,
    passes: int,
    stride: int = 7,
    warm_table: bool = True,
    pad_ops: int = 0,
    seed: int = 0,
    description: str = "",
) -> Workload:
    """Repeated passes over a block (L2-resident reuse, x264-like)."""
    rng = random.Random(seed)
    memory: dict[int, int | float] = {
        TABLE_BASE + WORD * i: rng.randrange(block_words) for i in range(block_words)
    }
    source = f"""
        li r1, 0
        li r2, {passes}
        li r12, 3
        li r20, 17
    outer:
        li r4, 0
        li r5, {block_words}
    inner:
        shl r9, r4, r12
        load r6, r9, {TABLE_BASE}      ; block[j]
        shl r10, r6, r12
        load r8, r10, {TABLE_BASE}     ; block[block[j]] (tainted indirect)
{_pad_block(pad_ops)}
        blt r8, r6, skip
        add r3, r3, r8
    skip:
        addi r4, r4, {stride}          ; word stride
        blt r4, r5, inner
        addi r1, r1, 1
        blt r1, r2, outer
        store r3, r0, {OUTPUT_BASE}
        halt
    """
    warm = _warm_region(TABLE_BASE, block_words) if warm_table else ()
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm,
        description=description or f"{passes} passes over {block_words}-word block",
    )


def make_fp_dense(
    name: str,
    *,
    elems: int,
    iterations: int,
    companion_words: int = 16 * 1024,
    subnormal_frac: float = 0.0,
    seed: int = 0,
    description: str = "",
) -> Workload:
    """FP-dense compute (namd-like).

    The FP operand table is small (fast operand arrival) while the integer
    companion table that feeds the value branch is ``companion_words`` big
    (L2 by default), so branch resolution lags the FP operands — the window
    in which fmul/fdiv are tainted-but-ready.  That is the case that
    separates STT{ld} (no FP protection, near-zero overhead here) from
    STT{ld+fp} (delays the FP ops) from SDO (predicts the fast path).
    ``subnormal_frac`` of the operands take the slow FP path, which is also
    the Obl-FP fail probability.
    """
    rng = random.Random(seed)
    if elems & (elems - 1) or companion_words & (companion_words - 1):
        raise ValueError("elems and companion_words must be powers of two")
    memory: dict[int, int | float] = {}
    for i in range(elems):
        if rng.random() < subnormal_frac:
            memory[TABLE_BASE + WORD * i] = SUBNORMAL_VALUE
        else:
            memory[TABLE_BASE + WORD * i] = 1.0 + rng.random()
    for i in range(companion_words):
        memory[AUX_BASE + WORD * i] = rng.randrange(1000)
    for i in range(iterations):
        memory[INDEX_BASE + WORD * i] = rng.randrange(companion_words)
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r7, 150
        li r12, 3
        li r13, {elems - 1}
        li r14, 547
        li r15, {companion_words - 1}
        fli f2, 1.0009765625
        fli f3, 0.5
    loop:
        mul r5, r1, r14                ; prime word stride through companion
        and r5, r5, r15
        shl r10, r5, r12
        load r6, r10, {AUX_BASE}       ; slow companion, CLEAN address
        and r11, r1, r13
        shl r11, r11, r12
        fload f0, r11, {TABLE_BASE}    ; L1 fp operand, CLEAN address: issues
                                       ; speculatively, output tainted
        fmul f1, f0, f2                ; tainted-at-ready: the {{ld+fp}} case
        fdiv f4, f1, f0                ; transmitter (slow if f0 subnormal)
        fmul f5, f5, f2                ; loop-carried transmitter chain
        fadd f5, f5, f4
        blt r6, r7, skip               ; value branch on slow companion
        fmul f5, f5, f3
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        fstore f5, r0, {OUTPUT_BASE}
        halt
    """
    warm = (
        _warm_region(INDEX_BASE, iterations)
        + _warm_region(TABLE_BASE, elems)
        + _warm_region(AUX_BASE, companion_words)
    )
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm,
        description=description or f"fp-dense over {elems} elems",
    )


def make_fp_stream(
    name: str,
    *,
    words: int,
    iterations: int,
    subnormal_frac: float = 0.001,
    seed: int = 0,
    description: str = "",
) -> Workload:
    """FP streaming with indirect coefficient lookup (bwaves-like).

    a[i] streams; the coefficient c[k[i]] and the branch companion are
    indirect into ``words``-sized (warmed) tables, so the tainted loads and
    FP transmitters live under moderately slow branch windows.
    """
    rng = random.Random(seed)
    companion_base = AUX_BASE << 1
    memory: dict[int, int | float] = {}
    for i in range(words):
        value: int | float
        if rng.random() < subnormal_frac:
            value = SUBNORMAL_VALUE
        else:
            value = rng.random() + 0.1
        memory[TABLE_BASE + WORD * i] = value
        memory[AUX_BASE + WORD * i] = rng.randrange(words)
        memory[companion_base + WORD * i] = rng.randrange(1000)
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r7, 150
        li r12, 3
    loop:
        shl r9, r1, r12
        fload f0, r9, {TABLE_BASE}     ; a[i] streaming, CLEAN address
        load r5, r9, {AUX_BASE}        ; coefficient index (strided)
        shl r10, r5, r12
        load r6, r10, {companion_base} ; indirect int (tainted) -> branch
        fload f1, r10, {TABLE_BASE}    ; c[k[i]] (tainted indirect)
        fmul f2, f0, f0                ; tainted-at-ready under {{ld+fp}}
        fsqrt f4, f0                   ; transmitter on the clean stream
        fadd f3, f3, f2
        fadd f3, f3, f4
        blt r6, r7, skip               ; value branch -> taint window
        fmul f3, f3, f1                ; transmitter on the indirect value
    skip:
        fstore f3, r9, {OUTPUT_BASE}
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    warm = (
        _warm_region(AUX_BASE, words)
        + _warm_region(companion_base, words)
        + _warm_region(TABLE_BASE, words)
    )
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm,
        description=description or f"fp stream over {words} words",
    )


def make_compute_kernel(
    name: str,
    *,
    iterations: int,
    description: str = "",
) -> Workload:
    """Integer compute with computed branches; negligible memory traffic."""
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r7, 7
        li r8, 3
    loop:
        mul r3, r1, r7
        add r3, r3, r8
        andi r4, r3, 15
        blt r4, r7, low
        xor r5, r5, r3
        jmp merge
    low:
        add r5, r5, r4
    merge:
        shr r6, r3, r8
        add r5, r5, r6
        addi r1, r1, 1
        blt r1, r2, loop
        store r5, r0, {OUTPUT_BASE}
        halt
    """
    return Workload(
        name=name,
        program=assemble(source, {}, name=name),
        warm_addresses=(),
        description=description or "integer compute kernel",
    )


# --------------------------------------------------------------------------
# Spectre-v1 gadget skeleton (the repro.scan corpus and its seeded soups).
#
# The skeleton computes the attacker index *branchlessly* (slt/sub/mul select
# in-bounds while training, out-of-bounds on the final round) so the only
# data-relevant branch is the bounds check itself; the check's limit arrives
# through a long dependent ALU chain, so the branch resolves tens of cycles
# after the (warm) access load and the mispredict window is dynamically wide
# open on the attack round.  A cold limit *load* would not work here: making
# it slow round after round requires serialising it on the previous round's
# loaded value, which taints the limit address chain and would turn every
# looped program — including the safe ones — into a static positive.  The
# ALU chain delays resolution with zero taint.  The attack round's branch is
# architecturally taken, so the payload never commits: the committed stream
# is secret-invariant and any trace/cycle difference between the two secrets
# is a speculative leak.

#: Victim array (warmed; 8 in-bounds words).
GADGET_A_BASE = 1 << 22
#: Transmit target array (cold).
GADGET_B_BASE = 1 << 23
#: Second-hop transmit target (cold).
GADGET_C_BASE = 1 << 24
#: Per-round bounds-limit cells, one cold line each (stride 64).
GADGET_LIMIT_BASE = 1 << 25
GADGET_TRAIN_ROUNDS = 12
#: Out-of-bounds index of the secret cell (32 KiB past A).
GADGET_OOB_INDEX = 4096
GADGET_SECRET_ADDR = GADGET_A_BASE + WORD * GADGET_OOB_INDEX
#: Integer secrets: x512 transmit stride puts them on different cache
#: lines, away from anything the training rounds touch.
GADGET_SECRET_VALUES = (16, 17)
GADGET_TRANSMIT_SHIFT = 9
#: FP secrets: a normal vs a subnormal operand (the Obl-FP slow path).
GADGET_FP_SECRET_VALUES = (1.5, 1e-40)
#: Dependent ALU ops delaying the bounds check's limit each round.  The
#: access load hits a warm line (~2 cycles), so the transmit issues a few
#: cycles after dispatch; the branch cannot resolve for at least this many.
GADGET_CHAIN_LENGTH = 48


def gadget_memory(secret: int, *, fp: bool = False) -> dict[int, int | float]:
    """Initial memory for one gadget-pair half: differs only at the secret."""
    if secret not in (0, 1):
        raise ValueError("secret selects a memory image; it must be 0 or 1")
    memory: dict[int, int | float] = {}
    for i in range(8):
        memory[GADGET_A_BASE + WORD * i] = 1.0 if fp else 0
    values = GADGET_FP_SECRET_VALUES if fp else GADGET_SECRET_VALUES
    memory[GADGET_SECRET_ADDR] = values[secret]
    for round_index in range(GADGET_TRAIN_ROUNDS + 1):
        memory[GADGET_LIMIT_BASE + 64 * round_index] = 8
    return memory


def make_bounds_check_gadget(
    name: str,
    *,
    payload: str,
    secret: int,
    fp_access: bool = False,
    description: str = "",
) -> Workload:
    """The corpus skeleton: bounds-check bypass around ``payload``.

    ``payload`` is raw assembly (8-space indented) placed right after the
    access load, inside the speculative window; it sees the loaded value in
    ``r7`` (``f1`` with ``fp_access``) and may scratch r3/r5/r8/r9/r11,
    r20, r23+ and f2.  The skeleton reserves r1/r2/r4/r6/r10/r12/r13/
    r16-r19/r21/r22/r26 and provides r13 = transmit shift, r18 = 1,
    f3 = 3.0.
    """
    access = (
        f"        fload f1, r10, {GADGET_A_BASE}"
        if fp_access
        else f"        load r7, r10, {GADGET_A_BASE}"
    )
    chain = "\n".join(
        "        addi r26, r26, 0" for _ in range(GADGET_CHAIN_LENGTH)
    )
    source = f"""
        li r1, 0
        li r2, {GADGET_TRAIN_ROUNDS + 1}
        li r21, {GADGET_TRAIN_ROUNDS}
        li r18, 1
        li r22, {GADGET_OOB_INDEX}
        li r12, 3
        li r13, {GADGET_TRANSMIT_SHIFT}
        fli f3, 3.0
    loop:
        slt r16, r1, r21         ; 1 while training, 0 on the attack round
        sub r17, r18, r16        ; 0 while training, 1 on the attack round
        mul r19, r17, r22        ; 0 while training, OOB index on attack
        andi r4, r1, 7
        mul r4, r4, r16          ; benign component (0 on the attack round)
        add r4, r4, r19          ; final index, selected without a branch
        shl r10, r4, r12         ; byte offset into A
        add r26, r1, r18         ; restart the resolution-delay chain
{chain}
        andi r26, r26, 0         ; back to 0, only after the delay
        addi r6, r26, 8          ; the limit: 8, ready late, never tainted
        bge r4, r6, skip         ; bounds check; mispredicted on attack
{access}
{payload}
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    return Workload(
        name=name,
        program=assemble(source, gadget_memory(secret, fp=fp_access), name=name),
        # The victim touched the secret legitimately just before (the usual
        # Spectre preamble), so the access load is fast enough for the
        # payload to issue inside the window.
        warm_addresses=(GADGET_A_BASE, GADGET_SECRET_ADDR),
        description=description or "bounds-check-bypass gadget skeleton",
    )


#: Payload fragment kinds for the seeded soups.  Weights lean toward the
#: interesting ones; "pad" keeps programs from being wall-to-wall sinks.
_SOUP_POOL = (
    "transmit", "transmit",
    "alu", "alu",
    "store_addr",
    "store_value",
    "kill",
    "accumulate",
    "pad",
)

#: Reason attached to soups whose only sink is a store address.
SOUP_STORE_UNSOUND_REASON = (
    "stores touch memory only at commit in this machine, so a squashed "
    "store-address gadget leaves no resource trace; the static finding is "
    "kept — real LSUs translate store addresses speculatively"
)


def gadget_soup_spec(
    seed: int, *, fragments: tuple[int, int] = (2, 5)
) -> tuple[str, frozenset[str], frozenset[str]]:
    """Derive one soup's payload and its expected static verdict.

    Returns ``(payload, expected_classes, unsound_ok)`` where the classes
    use the :mod:`repro.scan.analyzer` names (``v1``/``v1.1``/``latency``).
    The generator tracks taint liveness through the fragments — an
    immediate write kills the chain — so the declared classes are exactly
    what a correct window-taint analysis must report, and ``v1`` membership
    is exactly "this soup leaks under the Unsafe machine".
    """
    rng = random.Random(seed)
    count = rng.randint(*fragments)
    lines: list[str] = []
    classes: set[str] = set()
    curr = "r7"  # register currently holding the access value's dataflow
    live = True  # does ``curr`` still carry the access load's taint?
    for _ in range(count):
        kind = rng.choice(_SOUP_POOL)
        if kind == "transmit":
            lines.append(f"        shl r8, {curr}, r13")
            lines.append(f"        load r11, r8, {GADGET_B_BASE}")
            if live:
                classes.add("v1")
        elif kind == "alu":
            lines.append(f"        add r8, {curr}, r18")
            lines.append("        xor r8, r8, r18")
            curr = "r8"
        elif kind == "store_addr":
            # Targets C, not B: a speculative store to the same address as
            # a later transmit load would satisfy it by SQ forwarding, and
            # the forwarded load never touches the hierarchy.
            lines.append(f"        shl r20, {curr}, r13")
            lines.append(f"        store r3, r20, {GADGET_C_BASE}")
            if live:
                classes.add("v1.1")
        elif kind == "store_value":
            lines.append("        shl r20, r1, r12")
            lines.append(f"        store {curr}, r20, {OUTPUT_BASE}")
        elif kind == "kill":
            lines.append("        li r8, 0")
            curr = "r8"
            live = False
        elif kind == "accumulate":
            lines.append(f"        add r3, r3, {curr}")
        else:  # pad
            lines.append("        addi r24, r24, 1")
    unsound = frozenset({"v1.1"} & classes)
    return "\n".join(lines), frozenset(classes), unsound


def make_gadget_soup(name: str, *, seed: int, secret: int) -> Workload:
    """One seeded random gadget-soup program (see :func:`gadget_soup_spec`)."""
    payload, classes, _ = gadget_soup_spec(seed)
    return make_bounds_check_gadget(
        name,
        payload=payload,
        secret=secret,
        description=(
            f"seeded gadget soup (seed {seed}; "
            f"classes {sorted(classes) or 'none'})"
        ),
    )


def make_mixed_kernel(
    name: str,
    *,
    table_words: int,
    iterations: int,
    seed: int = 0,
    description: str = "",
) -> Workload:
    """gcc-like mixture: stride loads, one indirect load, two branches."""
    rng = random.Random(seed)
    memory: dict[int, int | float] = {}
    for i in range(table_words):
        memory[TABLE_BASE + WORD * i] = rng.randrange(table_words)
    for i in range(iterations):
        memory[INDEX_BASE + WORD * i] = rng.randrange(1000)
    source = f"""
        li r1, 0
        li r2, {iterations}
        li r7, 300
        li r11, {table_words - 1}
        li r12, 3
    loop:
        shl r9, r1, r12
        load r5, r9, {INDEX_BASE}      ; strided scalar
        blt r5, r7, cold
        and r6, r5, r11
        shl r10, r6, r12
        load r8, r10, {TABLE_BASE}     ; indirect (tainted)
        add r3, r3, r8
        jmp merge
    cold:
        mul r4, r5, r7
        add r3, r3, r4
    merge:
        store r3, r9, {OUTPUT_BASE}
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    warm = _warm_region(INDEX_BASE, iterations) + _warm_region(TABLE_BASE, table_words)
    return Workload(
        name=name,
        program=assemble(source, memory, name=name),
        warm_addresses=warm,
        description=description or "mixed stride/indirect kernel",
    )
