"""The named SPEC CPU2017-like suite used by the evaluation harness.

Sizing notes (64B lines; L1 32KB = 4K words, L2 256KB = 32K words,
L3 2MB = 256K words):

* L1-resident tables: 2K words (16KB)
* L2-resident tables: 16K words (128KB)
* L3-resident tables: 96K words (768KB)
* DRAM: 1M words (8MB), unwarmed

Iteration counts are chosen so each run commits roughly 4k-10k instructions
— enough for the predictors and branch predictor to train, small enough that
the full Figure-6 sweep (8 configurations x 2 attack models x 10 workloads)
completes in minutes on a laptop.
"""

from __future__ import annotations

from repro.workloads.generators import (
    make_compute_kernel,
    make_fp_dense,
    make_fp_stream,
    make_hash_probe,
    make_indirect_stream,
    make_mixed_kernel,
    make_pointer_chase,
    make_stream_kernel,
    make_stride_reuse,
)
from repro.workloads.workload import Workload

_L1_WORDS = 2 * 1024
_L2_WORDS = 16 * 1024
_L3_WORDS = 96 * 1024
_DRAM_WORDS = 1024 * 1024


def _build_suite(scale: float = 1.0) -> tuple[Workload, ...]:
    def n(iterations: int) -> int:
        """Scale an iteration count (minimum kept high enough to train)."""
        return max(60, int(iterations * scale))

    return (
        make_indirect_stream(
            "mcf_like",
            table_words=320 * 1024,  # 2.5MB warmed: ~3/4 L3, 1/4 DRAM
            iterations=n(140),
            branch_taken_prob=0.15,  # mostly predictable value branches
            unroll=3,
            pad_ops=6,
            seed=11,
            description="L3/DRAM indirect accesses under value branches "
            "(MLP-bound; SDO limited by the no-DRAM-DO-variant rule)",
        ),
        make_pointer_chase(
            "omnetpp_like",
            nodes=6 * 1024,  # 96KB of nodes: L2-resident
            iterations=n(700),
            pad_ops=2,
            seed=12,
            description="L2-resident pointer chasing with value branches",
        ),
        make_hash_probe(
            "xalancbmk_like",
            buckets=_L2_WORDS,
            iterations=n(550),
            pad_ops=4,
            seed=13,
            description="hash-table probing, L2-resident buckets",
        ),
        make_mixed_kernel(
            "gcc_like",
            table_words=_L2_WORDS,
            iterations=n(700),
            seed=14,
            description="mixed stride/indirect with data-dependent branches",
        ),
        make_indirect_stream(
            "deepsjeng_like",
            table_words=_L1_WORDS,
            iterations=n(800),
            branch_taken_prob=0.4,
            unroll=1,
            seed=15,
            description="branchy search over an L1-resident table",
        ),
        make_stream_kernel(
            "lbm_like",
            words=32 * 1024,
            iterations=n(900),
            description="streaming: one L1 miss per 8 accesses (loop pattern)",
        ),
        make_stride_reuse(
            "x264_like",
            block_words=_L2_WORDS,
            passes=1,
            stride=13,
            pad_ops=2,
            seed=16,
            description="strided block reuse, L2-resident",
        ),
        make_fp_dense(
            "namd_like",
            elems=_L1_WORDS,
            iterations=n(600),
            subnormal_frac=0.002,
            seed=17,
            description="FP-dense compute, L1-resident operands",
        ),
        make_fp_stream(
            "bwaves_like",
            words=_L2_WORDS,
            iterations=n(600),
            subnormal_frac=0.002,
            seed=18,
            description="FP streaming with indirect coefficients",
        ),
        make_compute_kernel(
            "exchange2_like",
            iterations=n(900),
            description="integer compute, negligible memory traffic",
        ),
        make_indirect_stream(
            "xz_like",
            table_words=_L3_WORDS,
            iterations=n(200),
            branch_taken_prob=0.2,
            unroll=3,
            pad_ops=4,
            seed=19,
            description="L3-resident indirect accesses (match-finder-like)",
        ),
    )


SPEC17_SUITE: tuple[Workload, ...] = _build_suite()


def suite(scale: float = 1.0) -> tuple[Workload, ...]:
    """The evaluation suite; ``scale`` shrinks iteration counts uniformly
    (used by the CI-speed benchmark harness; 1.0 = the reported runs)."""
    if scale == 1.0:
        return SPEC17_SUITE
    return _build_suite(scale)


def workload_by_name(name: str) -> Workload:
    for workload in SPEC17_SUITE:
        if workload.name == name:
            return workload
    raise KeyError(
        f"no workload named {name!r}; available: "
        f"{[w.name for w in SPEC17_SUITE]}"
    )
