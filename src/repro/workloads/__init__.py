"""Synthetic SPEC CPU2017-like workloads.

The paper evaluates on SPEC CPU2017 reference inputs via SimPoint.  Neither
the binaries nor a cycle-accurate simulator fast enough for 10M-instruction
fragments is available here, so (per DESIGN.md §2) the suite substitutes
parameterised kernels — one per memory-behaviour class that drives the
paper's results:

==================  ==========================================================
``mcf_like``        DRAM-heavy pointer chasing with value-dependent branches
                    (STT's worst case; SDO limited by the no-DRAM-variant rule)
``omnetpp_like``    L2-resident pointer chasing, value branches — the case SDO
                    recovers almost entirely
``xalancbmk_like``  hash-table probing: index load -> bucket load -> compare
``gcc_like``        mixed stride/indirect loads, moderate branching
``deepsjeng_like``  branchy search over a small (L1) table
``lbm_like``        streaming stride loads/stores over a large array
                    (the loop-predictor pattern: one miss per N accesses)
``x264_like``       strided block reuse, L2-resident, data-dependent branches
``namd_like``       FP-dense compute on L1-resident data (FP transmitters)
``bwaves_like``     FP streaming with indirect indexing
``exchange2_like``  integer compute, tiny footprint, computed branches
==================  ==========================================================

Every workload declares the addresses to pre-warm into the hierarchy so that
measurement starts from a steady state (the stand-in for SimPoint's
checkpoint warmup).
"""

from repro.workloads.workload import Workload
from repro.workloads.generators import (
    make_compute_kernel,
    make_fp_stream,
    make_fp_dense,
    make_hash_probe,
    make_indirect_stream,
    make_mixed_kernel,
    make_pointer_chase,
    make_stream_kernel,
    make_stride_reuse,
)
from repro.workloads.spec17 import SPEC17_SUITE, suite, workload_by_name

__all__ = [
    "SPEC17_SUITE",
    "Workload",
    "make_compute_kernel",
    "make_fp_dense",
    "make_fp_stream",
    "make_hash_probe",
    "make_indirect_stream",
    "make_mixed_kernel",
    "make_pointer_chase",
    "make_stream_kernel",
    "make_stride_reuse",
    "suite",
    "workload_by_name",
]
