"""Workload descriptor: a program plus its measurement context."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program


@dataclass(frozen=True)
class Workload:
    """A named benchmark kernel.

    ``warm_addresses`` are pre-loaded into the memory hierarchy before
    measurement (our stand-in for SimPoint checkpoint warmup); ``max_cycles``
    is a per-workload safety bound for the slowest protected configuration.
    """

    name: str
    program: Program
    warm_addresses: tuple[int, ...] = ()
    description: str = ""
    max_cycles: int = 2_000_000

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload needs a name")

    @property
    def static_instructions(self) -> int:
        return len(self.program)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "program": self.program.to_dict(),
            "warm_addresses": list(self.warm_addresses),
            "description": self.description,
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Workload":
        return cls(
            name=payload["name"],
            program=Program.from_dict(payload["program"]),
            warm_addresses=tuple(payload.get("warm_addresses", ())),
            description=payload.get("description", ""),
            max_cycles=payload.get("max_cycles", 2_000_000),
        )
