#!/usr/bin/env python
"""Prove the sdolint CI gate actually fires.

A lint gate that silently passes everything is worse than no gate, so CI
runs this script alongside ``repro lint``.  It checks both directions:

1. The pristine tree passes (exit 0) — the committed baseline covers every
   known finding.
2. A copy of the tree with a deliberately injected data-dependent-timing
   violation in the DO-variant code FAILS (exit 1) and names the
   ``oblivious-timing`` checker — the taint analysis is alive, not
   vacuously green.

Usage:

    python scripts/check_sdolint_gate.py
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Appended to a copy of ``src/repro/core/sdo.py``: a helper whose reserved
#: latency is computed from the (secret-dependent) speculative result — the
#: exact violation class Definition 2 forbids and the taint lattice exists
#: to catch.
INJECTED_VIOLATION = '''

def oblivious_fast_path(op, port):
    """Injected by scripts/check_sdolint_gate.py — must be flagged."""
    port.reserve(latency=op.presult)
'''


def run_lint(root: Path) -> tuple[int, dict]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "lint",
            "--root",
            str(root),
            "--format",
            "json",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    try:
        payload = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"repro lint produced no JSON (exit {proc.returncode})") from None
    return proc.returncode, payload


def check_pristine() -> None:
    code, payload = run_lint(REPO_ROOT)
    if code != 0 or payload["gating"]:
        for finding in payload["new"]:
            print(f"  {finding['path']}:{finding['line']}: {finding['message']}")
        raise SystemExit("FAIL: pristine tree does not pass `repro lint`")
    print("ok: pristine tree passes the gate")


def check_injected_violation() -> None:
    with tempfile.TemporaryDirectory(prefix="sdolint-gate-") as tmp:
        tmp_root = Path(tmp)
        shutil.copytree(
            REPO_ROOT / "src" / "repro",
            tmp_root / "src" / "repro",
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        shutil.copy(REPO_ROOT / "sdolint-baseline.json", tmp_root)
        target = tmp_root / "src" / "repro" / "core" / "sdo.py"
        target.write_text(target.read_text() + INJECTED_VIOLATION)

        code, payload = run_lint(tmp_root)
        flagged = [
            finding
            for finding in payload["new"]
            if finding["checker"] == "oblivious-timing"
            and finding["path"].endswith("core/sdo.py")
        ]
        if code != 1 or not flagged:
            raise SystemExit(
                "FAIL: the gate did NOT flag an injected data-dependent "
                f"latency (exit {code}, oblivious-timing findings: "
                f"{len(flagged)})"
            )
    print("ok: injected data-dependent latency is flagged and gates (exit 1)")


def main() -> None:
    check_pristine()
    check_injected_violation()
    print("sdolint gate validation passed")


if __name__ == "__main__":
    main()
