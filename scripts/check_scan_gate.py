#!/usr/bin/env python
"""Prove the gadget-scan CI gate actually fires.

A scanner gate that silently passes everything is worse than no gate, so
CI runs this script alongside ``repro scan``.  It checks three directions:

1. The bundled corpus passes (exit 0) — the committed ``scan-baseline.json``
   covers every known gadget and no new one has crept in.
2. A freshly assembled bounds-check-bypass program FAILS (exit 1) and
   names the ``gadget-v1`` checker — the taint dataflow is alive, not
   vacuously green.
3. A safe program (the transient value is killed before any transmit)
   passes — the scanner is not crying wolf on everything with a branch.

Usage:

    python scripts/check_scan_gate.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.isa.assembler import assemble  # noqa: E402

#: A textbook Spectre-v1 gadget: past the bounds check, the speculative
#: load's result addresses a second load.
GADGET_SOURCE = """
    li r1, 64
    li r2, 8
    bge r1, r2, done
    load r3, r1, 0
    shl r4, r3, r2
    load r5, r4, 4096
done:
    halt
"""

#: Same shape, but the transient value is overwritten by an immediate
#: before anything address-forming sees it.
SAFE_SOURCE = """
    li r1, 64
    li r2, 8
    bge r1, r2, done
    load r3, r1, 0
    li r3, 0
    shl r4, r3, r2
    load r5, r4, 4096
done:
    halt
"""


def run_scan(extra_args: list[str]) -> tuple[int, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "scan", *extra_args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    return proc.returncode, proc.stdout + proc.stderr


def write_program(directory: Path, source: str, name: str) -> Path:
    program = assemble(source, name=name)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(program.to_dict()))
    return path


def main() -> int:
    code, output = run_scan([])
    if code != 0:
        print(output)
        print("FAIL: bundled corpus does not pass `repro scan`")
        return 1
    print("ok: bundled corpus passes the gate")

    with tempfile.TemporaryDirectory(prefix="scan-gate-") as tmp:
        directory = Path(tmp)
        gadget = write_program(directory, GADGET_SOURCE, "injected_gadget")
        code, output = run_scan(["--no-corpus", str(gadget)])
        if code != 1 or "gadget-v1" not in output:
            print(output)
            print("FAIL: injected bounds-check-bypass gadget not flagged")
            return 1
        print("ok: injected gadget fails the gate and names gadget-v1")

        safe = write_program(directory, SAFE_SOURCE, "killed_transient")
        code, output = run_scan(["--no-corpus", str(safe)])
        if code != 0:
            print(output)
            print("FAIL: safe control program was flagged")
            return 1
        print("ok: safe control program passes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
