#!/usr/bin/env python
"""Prove the replay-equivalence CI gate actually fires.

An equivalence gate that would pass even when replayed metrics drift is
worse than no gate, so the ``replay-equivalence`` CI job runs this script
alongside the grid in ``tests/replay/``.  It checks both directions:

1. A live run and a replayed run of the same cell produce bit-identical
   ``RunMetrics`` (the positive claim the grid pins at scale).
2. A deliberately perturbed *replayed* metrics dict FAILS the same
   comparison the tests use — the gate is sensitive to a single counter
   drifting by one, not vacuously green.
3. A deliberately perturbed *trace* makes the replayed run itself die with
   ``GoldenModelMismatch`` — corrupt-but-checksum-valid recordings cannot
   silently validate a run.

Usage:

    PYTHONPATH=src python scripts/check_replay_gate.py
"""

from __future__ import annotations

import dataclasses
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common.config import AttackModel  # noqa: E402
from repro.pipeline.core import GoldenModelMismatch  # noqa: E402
from repro.replay.recorder import record_trace  # noqa: E402
from repro.replay.replayer import replay_execute  # noqa: E402
from repro.replay.trace import ArchTrace  # noqa: E402
from repro.sim.api import RunRequest, execute  # noqa: E402
from repro.sim.configs import config_by_name  # noqa: E402
from repro.workloads import make_mixed_kernel  # noqa: E402


def _request() -> RunRequest:
    return RunRequest(
        workload=make_mixed_kernel("gate_mixed", table_words=1024, iterations=24, seed=31),
        config=config_by_name("Hybrid"),
        attack_model=AttackModel.SPECTRE,
    )


def check_equivalence() -> dict:
    request = _request()
    live = execute(request).to_dict()
    replayed = replay_execute(request, record_trace(request)).to_dict()
    if replayed != live:
        drifted = sorted(
            key
            for key in set(live) | set(replayed)
            if live.get(key) != replayed.get(key)
        )
        raise SystemExit(f"FAIL: replayed metrics differ from live metrics in {drifted!r}")
    print("ok: live and replayed RunMetrics are bit-identical")
    return live


def check_metric_perturbation_fails(live: dict) -> None:
    perturbed = dict(live)
    perturbed["cycles"] = perturbed["cycles"] + 1
    if perturbed == live:
        raise SystemExit(
            "FAIL: the equivalence comparison did not notice a replayed "
            "cycle count perturbed by one — the gate cannot fire"
        )
    print("ok: a single perturbed replayed metric fails the comparison")


def check_trace_perturbation_fails() -> None:
    request = _request()
    records = record_trace(request).records()
    victim = next(i for i, op in enumerate(records) if isinstance(op.result, int))
    records[victim] = dataclasses.replace(records[victim], result=records[victim].result ^ 1)
    try:
        replay_execute(request, ArchTrace.from_records(records, halted=True))
    except GoldenModelMismatch:
        print("ok: a perturbed trace record aborts replay (GoldenModelMismatch)")
        return
    raise SystemExit(
        "FAIL: replay against a perturbed trace completed without raising "
        "GoldenModelMismatch — replayed runs are not actually verified"
    )


def main() -> None:
    live = check_equivalence()
    check_metric_perturbation_fails(live)
    check_trace_perturbation_fails()
    print("replay-equivalence gate validation passed")


if __name__ == "__main__":
    main()
