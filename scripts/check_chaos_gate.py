#!/usr/bin/env python
"""Prove the chaos-soak CI gate actually fires.

The ``chaos-soak`` CI job drives a full sweep through a fault-injecting
proxy and asserts bit-identical results (``tests/fabric/test_chaos.py``).
That gate is only meaningful if the *hardening* — the retrying transport,
idempotency tokens, circuit breaker — is what makes the sweep survive.
This script is the negative control: it runs the same seeded fault plan
twice against a live scheduler and checks both directions:

1. **Un-hardened fails.**  A client with the retry layer disabled
   (``TransportPolicy(retries=0, breaker_threshold=0)``) dies with a
   ``FabricError`` on the plan's first injected submission fault.  If it
   survives, the chaos plan is not actually exercising the transport and
   the soak is vacuous — exit 1.
2. **Hardened survives.**  The default client absorbs the same faults,
   the submission lands exactly once (no twin sweep from the retries),
   and the fault ledger proves faults were really injected.

It also round-trips the plan through JSON and checks the replayed
schedule is identical — the serialized plan a failure report embeds must
reproduce the exact faults.

Usage:

    PYTHONPATH=src python scripts/check_chaos_gate.py

Exit status: 0 when the gate is proven sensitive, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.config import AttackModel
from repro.fabric.chaos import ChaosPlan, ChaosProxy, ChaosSpec, read_ledger
from repro.fabric.client import FabricClient
from repro.fabric.scheduler import FabricScheduler, make_server
from repro.fabric.transport import FabricError, TransportPolicy
from repro.sim.api import RunRequest
from repro.sim.configs import config_by_name
from repro.workloads import make_indirect_stream

#: Every fault class that can hit a submission, weighted so roughly half
#: of all seeds inject one on the very first ``POST /v1/sweeps``; ``limit``
#: guarantees the hardened client's retry budget outlasts the faults.
SPECS = {
    "POST /v1/sweeps": ChaosSpec(
        drop_request=0.2, drop_response=0.15, truncate=0.15, corrupt=0.1, limit=3
    )
}

SUBMIT_ENDPOINT = "POST /v1/sweeps"


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def first_faulty_seed() -> tuple[int, str]:
    """The first seed whose plan faults the very first submission."""
    for seed in range(10_000):
        fault = ChaosPlan(seed, SPECS).fault_for(SUBMIT_ENDPOINT, 0)
        if fault is not None:
            return seed, fault
    raise AssertionError("no faulty seed in 10k — rates are broken")


def tiny_batch() -> list[RunRequest]:
    workload = make_indirect_stream("gate", table_words=64, iterations=8, seed=7)
    return [
        RunRequest(
            workload=workload,
            config=config_by_name("Unsafe"),
            attack_model=AttackModel.SPECTRE,
            max_instructions=2_000,
        )
    ]


def main() -> int:
    seed, fault = first_faulty_seed()
    print(f"seed {seed} injects '{fault}' on the first {SUBMIT_ENDPOINT}")

    plan = ChaosPlan(seed, SPECS)
    clone = ChaosPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    schedule = [plan.fault_for(SUBMIT_ENDPOINT, n) for n in range(64)]
    if [clone.fault_for(SUBMIT_ENDPOINT, n) for n in range(64)] != schedule:
        fail("serialized plan does not replay the same fault schedule")
    print("serialized plan replays the identical schedule")

    with tempfile.TemporaryDirectory() as tmp:
        scheduler = FabricScheduler(Path(tmp) / "state")
        server = make_server(scheduler, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        upstream = "http://127.0.0.1:%d" % server.server_address[1]
        ledger = Path(tmp) / "faults.jsonl"
        try:
            # 1. Un-hardened client must die on the first injected fault.
            with ChaosProxy(upstream, ChaosPlan(seed, SPECS)) as proxy:
                raw = FabricClient(
                    proxy.url,
                    transport_policy=TransportPolicy(
                        retries=0, breaker_threshold=0
                    ),
                )
                try:
                    raw.submit(tiny_batch())
                except FabricError as exc:
                    print(f"un-hardened client failed as required: {exc}")
                else:
                    fail(
                        "un-hardened client survived the fault plan — "
                        "the chaos gate is vacuous"
                    )

            # 2. The hardened default client must absorb the same plan.
            # (The raw client's doomed submission may still have reached the
            # scheduler — drop-response/truncate/corrupt all lose only the
            # reply — so count sweeps relative to this point.)
            sweeps_before = len(scheduler.queue.sweeps)
            with ChaosProxy(
                upstream, ChaosPlan(seed, SPECS), ledger=ledger
            ) as proxy:
                hardened = FabricClient(
                    proxy.url,
                    transport_policy=TransportPolicy(backoff_base=0.01),
                )
                reply = hardened.submit(tiny_batch())
                if not reply.get("sweep_id"):
                    fail(f"hardened submit returned no sweep id: {reply}")
                retries = hardened.transport.stats["retries"]
                if retries < 1:
                    fail("hardened client needed no retries — no fault hit it")
                print(
                    f"hardened client survived with {retries} "
                    f"retr{'y' if retries == 1 else 'ies'}"
                )

            faults = read_ledger(ledger)
            if not faults:
                fail("fault ledger is empty — the proxy injected nothing")
            print(f"ledger records {len(faults)} injected fault(s)")

            # The retried submission must not have enqueued a twin sweep.
            created = len(scheduler.queue.sweeps) - sweeps_before
            if created != 1:
                fail(
                    f"retried submission created {created} sweeps, expected "
                    f"exactly 1 — idempotency tokens are not deduplicating"
                )
            print("retried submission deduplicated to a single sweep")
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close()

    print("chaos gate verified: hardening is load-bearing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
