#!/usr/bin/env python
"""Regenerate the golden-stats fixture used by the CI regression check.

The fixture pins the complete ``RunMetrics.to_dict()`` output (including the
observability layer's ``core.stall.*`` / ``core.occ.*`` /
``protection.decisions.*`` counters) of a small, fixed workload under a few
configurations.  Simulation is deterministic, so any diff means the timing
model or the stats schema changed; when the change is intentional, refresh
with:

    python scripts/refresh_golden_stats.py

and commit the updated ``tests/golden/golden_stats.json`` together with the
change that caused it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

FIXTURE = REPO_ROOT / "tests" / "golden" / "golden_stats.json"

#: (config name, attack model value) cells pinned by the fixture.
GOLDEN_CELLS = [
    ("Unsafe", "spectre"),
    ("STT{ld}", "spectre"),
    ("Hybrid", "spectre"),
    ("Hybrid", "futuristic"),
    ("SpecBox", "spectre"),
    ("DelayOnMiss", "spectre"),
    ("Fence", "spectre"),
]

#: Extra cell run on a deliberately starved machine so the occupancy/
#: pressure counters (lq/sq/preg/fetch stalls, MSHR merges and stalls,
#: evictions, obl failures + validations) all appear in the fixture.
STRESS_CELL_KEY = "Stress/static-l1"


def golden_workload():
    """Small but non-trivial: misses, tainted loads, and a value branch."""
    from repro.workloads import make_indirect_stream

    return make_indirect_stream("golden_stats_kernel", table_words=1024, iterations=80, seed=42)


def stress_workload():
    """A kernel shaped to exercise the pressure counters.

    Two strided load streams plus an *indirect* load (its address comes
    from a loaded value, so SDO issues it obliviously — and with the
    pointed-to region far beyond the stress machine's tiny L1, the
    Static-L1 prediction fails and validations are issued), three store
    streams for SQ pressure, a footprint past the tiny L1/L2 (misses,
    fills, evictions, MSHR merges on line-sharing iterations), and the
    loop-closing branch as the *last* instruction so the cold not-taken
    prediction runs fetch off the end of the program on the wrong path.
    """
    from dataclasses import replace

    from repro.isa.assembler import assemble
    from repro.workloads.workload import Workload

    table_a = 1 << 22
    table_b = (1 << 22) + (1 << 17)
    table_c = 1 << 23
    bound = (1 << 22) + (1 << 18)
    bound2 = (1 << 22) + (1 << 19)
    bound3 = (1 << 22) + (3 << 18)
    out = 1 << 28
    out2 = out + (1 << 17)
    iterations = 200
    source = f"""
        li r1, 0
        li r12, 3
        li r13, 6
        li r21, 48
        li r22, 1
        jmp loop
    done:
        halt
    ; --- phase 1: load pressure + oblivious (tainted-address) loads ---
    loop:
        shl r3, r1, r12
        andi r4, r3, 8191
        shl r14, r1, r13
        andi r14, r14, 32767
        load r9, r14, {bound}    ; cold per-iteration bound: slow resolve
        load r5, r4, {table_a}   ; warm index stream: returns fast, tainted
        load r6, r4, {table_b}   ; second stream
        load r10, r4, {table_b + 8}  ; same line as previous -> MSHR merge
        load r8, r5, {table_c}   ; indirect: tainted address -> Obl issue
        add r7, r5, r6
        add r11, r10, r8
        add r7, r7, r11
        store r7, r4, {out}
        store r11, r4, {out2}
        addi r1, r1, 1
        bge r1, r9, p2           ; waits on the cold bound every iteration
        jmp loop
    ; --- phase 2: store-queue pressure behind a cold load ---
    p2:
        li r20, 0
    p2loop:
        shl r14, r20, r13
        andi r14, r14, 32767
        load r5, r14, {bound2}   ; cold: blocks commit
        add r6, r5, r1
        store r6, r14, {out + (1 << 18)}
        store r1, r14, {out + (1 << 19)}
        store r20, r14, {out + (1 << 20)}
        store r12, r14, {out + (1 << 21)}
        addi r20, r20, 1
        blt r20, r21, p2loop
    ; --- phase 3: physical-register pressure behind a cold load ---
        li r20, 0
    p3loop:
        shl r14, r20, r13
        andi r14, r14, 32767
        load r5, r14, {bound3}   ; cold: blocks commit, dests pile up
        addi r15, r1, 1
        addi r16, r1, 2
        addi r17, r1, 3
        addi r18, r1, 4
        addi r19, r1, 5
        addi r23, r1, 6
        addi r24, r1, 7
        addi r25, r1, 8
        addi r20, r20, 1
        bge r20, r21, done
        blt r0, r22, p3loop  ; always taken; last index, so the cold
                             ; not-taken prediction fetches off the end
    """
    program = assemble(source, name="golden_stress_kernel")
    # Spread the indirect targets over 512 KiB so Static-L1 predictions
    # miss; keep them word-aligned.  Each bound cell (stride 64) holds the
    # trip count, so the phase-1 exit branch waits on a cold load every
    # iteration — keeping the loads behind it speculative (and tainted)
    # long enough to issue obliviously.
    image = {
        table_a + 8 * i: (i * 2654435761 % (1 << 19)) & ~7 for i in range(1024)
    }
    image.update({bound + 64 * i: iterations for i in range(512)})
    program = replace(program, initial_memory=image)
    return Workload(
        name="golden_stress_kernel",
        program=program,
        # Warm the index stream so its loads return (tainted) while the
        # cold bound branch is still unresolved.
        warm_addresses=tuple(range(table_a, table_a + 8192, 64)),
        description="pressure-counter stress kernel for the golden fixture",
        max_cycles=2_000_000,
    )


def stress_machine():
    """A starved machine: tiny queues, register files, caches and MSHRs."""
    from repro.common.config import CacheConfig, CoreConfig, MachineConfig

    return MachineConfig(
        core=CoreConfig(
            fetch_width=2,
            decode_width=2,
            issue_width=2,
            commit_width=2,
            rob_entries=48,
            lq_entries=10,
            sq_entries=6,
            iq_entries=16,
            phys_int_regs=56,
            phys_fp_regs=20,
        ),
        l1d=CacheConfig("L1D", 1024, 64, 2, 2, banks=2, ports=2, mshrs=2),
        l2=CacheConfig("L2", 8 * 1024, 64, 4, 12, banks=2, mshrs=2),
    )


def collect() -> dict:
    from repro.common.config import AttackModel
    from repro.sim.api import RunRequest, execute
    from repro.sim.configs import config_by_name

    workload = golden_workload()
    cells = {}
    for config_name, model in GOLDEN_CELLS:
        request = RunRequest(
            workload=workload,
            config=config_by_name(config_name),
            attack_model=AttackModel(model),
        )
        cells[f"{config_name}/{model}"] = execute(request).to_dict()
    stress_request = RunRequest(
        workload=stress_workload(),
        config=config_by_name("Static L1"),
        attack_model=AttackModel.SPECTRE,
        machine=stress_machine(),
    )
    cells[STRESS_CELL_KEY] = execute(stress_request).to_dict()
    return {
        "_comment": "Generated by scripts/refresh_golden_stats.py; do not edit.",
        "cells": cells,
    }


def main() -> int:
    payload = collect()
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE} ({len(payload['cells'])} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
