"""Fast-forward win on DRAM-latency-bound work.

A cold pointer chase under STT is the fast-forward's home turf: every load
is a serial DRAM miss behind a tainted address, so the machine spends the
overwhelming majority of cycles provably idle.  The benchmark pins the
skipping path's wall time in ``benchmarks/baseline.json`` (so CI notices if
the win erodes) and the explicit ratio test enforces the tentpole's >= 2x
claim against the naive loop directly.
"""

import time

import pytest

from repro.common import AttackModel
from repro.pipeline.core import Core
from repro.sim import RunRequest, config_by_name, execute
from repro.workloads import make_pointer_chase

#: Cold (never warmed) chase: each hop is a dependent DRAM miss, and under
#: STT the next hop's address is tainted until the previous one commits.
_DRAM_BOUND = make_pointer_chase(
    "ff_bench_chase", nodes=8192, iterations=600, seed=11, warm_table=False
)

_REQUEST = RunRequest(
    workload=_DRAM_BOUND,
    config=config_by_name("STT{ld}"),
    attack_model=AttackModel.SPECTRE,
)


def test_fastforward_dram_bound(benchmark):
    """Wall time of the (default, skipping) path — tracked in baseline.json."""
    metrics = benchmark.pedantic(execute, args=(_REQUEST,), rounds=3, iterations=1)
    assert metrics.instructions > 1000


def test_fastforward_speedup_at_least_2x(monkeypatch):
    """The tentpole acceptance bar: >= 2x over the naive loop on
    DRAM-latency-bound work, measured in-process back to back."""

    def timed(fast_forward: bool) -> tuple[float, object]:
        monkeypatch.setattr(Core, "fast_forward", fast_forward)
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            metrics = execute(_REQUEST)
            best = min(best, time.perf_counter() - start)
        return best, metrics

    naive_time, naive_metrics = timed(False)
    fast_time, fast_metrics = timed(True)
    # Same simulation either way…
    assert fast_metrics.cycles == naive_metrics.cycles
    assert fast_metrics.stats == naive_metrics.stats
    # …at least twice as fast with skipping.
    speedup = naive_time / fast_time
    assert speedup >= 2.0, (
        f"fast-forward speedup {speedup:.2f}x < 2x on a DRAM-bound chase "
        f"(naive {naive_time:.3f}s, skipping {fast_time:.3f}s)"
    )
