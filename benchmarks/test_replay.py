"""Replay backend throughput: record once, serve every cell.

Two numbers, each pinned for a different reason.

``test_replay_reference_speedup_at_least_3x`` enforces the ISSUE's >= 3x
bar on the component replay actually removes: producing the per-cell
functional reference.  A live sweep re-interprets the whole program once
per cell; the replay backend interprets it once total, then each cell
only loads the recording and walks a cursor.  The end-to-end cell time is
*not* eligible for that bar — replayed runs still execute the full timing
pipeline (that is what makes them bit-identical) and the golden check is
a small slice of a cell's wall time, so the honest place to demand 3x is
the reference path itself, where it is enormous.

``test_replayed_sweep_wall_time`` pins the end-to-end replayed sweep in
``benchmarks/baseline.json`` so a regression in the replay plumbing
(recording per cell, failing to share traces, falling back to live) shows
up as a wall-clock jump in the perf-smoke job.
"""

import time

import pytest

from repro.common import AttackModel
from repro.isa.iss import Interpreter
from repro.replay.recorder import COMMIT_OVERSHOOT_MARGIN, record_trace
from repro.replay.store import TraceStore
from repro.replay.trace import TraceCursor, trace_key
from repro.sim import RunRequest
from repro.sim.configs import EVALUATED_CONFIGS
from repro.sim.engine import SweepEngine
from repro.workloads import make_mixed_kernel

#: One workload, many timing cells — the shape replay is built for.  All
#: ten evaluated configs (Table II plus the competing baselines) x both
#: attack models: the 20 cells a real sweep serves from one recording.
_WORKLOAD = make_mixed_kernel("replay_bench", table_words=4096, iterations=400, seed=13)
_REQUESTS = [
    RunRequest(
        workload=_WORKLOAD,
        config=config,
        attack_model=model,
    )
    for config in EVALUATED_CONFIGS
    for model in (AttackModel.SPECTRE, AttackModel.FUTURISTIC)
]


def _best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_replay_reference_speedup_at_least_3x(tmp_path):
    """>= 3x on the functional-reference path across a 20-cell sweep."""
    budget = _REQUESTS[0].max_instructions + COMMIT_OVERSHOOT_MARGIN
    store = TraceStore(tmp_path / "traces")

    def live_references():
        # What a live sweep does for its golden checking: one full
        # re-interpretation of the program per cell.
        for _ in _REQUESTS:
            Interpreter(_WORKLOAD.program).run(max_instructions=budget)

    def replayed_references():
        # What the replay backend does instead: record once (first cell
        # misses), then per cell load the recording and walk the cursor
        # end to end — the verification work the core actually consumes.
        for request in _REQUESTS:
            key = trace_key(request)
            trace = store.get(key)
            if trace is None:
                trace = record_trace(request)
                store.put(key, trace)
            cursor = TraceCursor(trace)
            for _ in range(len(trace)):
                cursor.step()

    live = _best_of(2, live_references)
    replayed = _best_of(2, replayed_references)
    speedup = live / replayed
    assert speedup >= 3.0, (
        f"replayed reference path is only {speedup:.2f}x faster than "
        f"re-interpreting per cell (live {live:.3f}s, replay {replayed:.3f}s)"
    )


def test_replayed_sweep_wall_time(benchmark, tmp_path):
    """End-to-end replayed sweep (record + 16 replayed cells), pinned in
    baseline.json by scripts/check_perf.py."""

    def sweep(root):
        engine = SweepEngine(jobs=1, trace_store=TraceStore(root))
        return engine.run(_REQUESTS)

    outcomes = benchmark.pedantic(
        sweep,
        setup=lambda: ((tmp_path / f"t{time.monotonic_ns()}",), {}),
        rounds=3,
        iterations=1,
    )
    assert len(outcomes) == len(_REQUESTS)
    assert all(outcome.halted for outcome in outcomes)
