"""Shared fixtures for the benchmark/reproduction harness.

The expensive part — sweeping every Table II configuration over the whole
workload suite under both attack models — runs once per session through the
sweep engine (:class:`repro.sim.api.Session`) and feeds every figure/table
benchmark.

Scaling: by default the sweep uses ``suite(scale=0.35)`` so the whole
``pytest benchmarks/ --benchmark-only`` run finishes in minutes.  Set
``REPRO_FULL_EVAL=1`` for the full-size runs reported in EXPERIMENTS.md,
and ``REPRO_JOBS=N`` to fan the sweep out over N worker processes (default:
one per CPU, capped at 8).  The result cache is left off so the printed
sweep time stays an honest measure of simulator throughput.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.sim.api import Session
from repro.sim.policies import CachePolicy, ExecutionPolicy
from repro.workloads import suite

OUT_DIR = pathlib.Path(__file__).parent / "out"


def _scale() -> float:
    return 1.0 if os.environ.get("REPRO_FULL_EVAL") else 0.35


def _jobs() -> int:
    configured = int(os.environ.get("REPRO_JOBS", "0"))
    return configured if configured > 0 else max(1, min(8, os.cpu_count() or 1))


@pytest.fixture(scope="session")
def sweep_session() -> Session:
    """The engine session every benchmark shares (no cache: honest timing).

    The generous per-run timeout never fires on a healthy simulator; it
    exists so a wedged run fails the benchmark job with a classified
    ``timeout`` instead of hanging CI until the job-level kill.
    """
    return Session(
        execution=ExecutionPolicy(jobs=_jobs(), timeout=1800.0),
        cache=CachePolicy(enabled=False),
    )


@pytest.fixture(scope="session")
def sweep_results(sweep_session):
    """Full evaluation sweep: every config x model x workload."""
    workloads = suite(scale=_scale())
    started = time.time()
    results = sweep_session.sweep(workloads)
    elapsed = time.time() - started
    print(f"\n[sweep] {len(results)} runs in {elapsed:.0f}s " f"(scale={_scale()}, jobs={_jobs()})")
    return results


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / name).write_text(text)
    print(f"\n{text}")
