"""Shared fixtures for the benchmark/reproduction harness.

The expensive part — sweeping every Table II configuration over the whole
workload suite under both attack models — runs once per session and feeds
every figure/table benchmark.

Scaling: by default the sweep uses ``suite(scale=0.35)`` so the whole
``pytest benchmarks/ --benchmark-only`` run finishes in minutes.  Set
``REPRO_FULL_EVAL=1`` for the full-size runs reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.sim import EVALUATED_CONFIGS, run_suite
from repro.workloads import suite

OUT_DIR = pathlib.Path(__file__).parent / "out"


def _scale() -> float:
    return 1.0 if os.environ.get("REPRO_FULL_EVAL") else 0.35


@pytest.fixture(scope="session")
def sweep_results():
    """Full evaluation sweep: every config x model x workload."""
    workloads = suite(scale=_scale())
    started = time.time()
    results = run_suite(workloads)
    elapsed = time.time() - started
    print(f"\n[sweep] {len(results)} runs in {elapsed:.0f}s (scale={_scale()})")
    return results


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / name).write_text(text)
    print(f"\n{text}")
