"""Sensitivity sweeps: how the STT-vs-SDO gap moves with the machine.

Not a paper figure — the extension a reviewer would ask for.  Artifacts are
written next to the other reproduction outputs.
"""


from benchmarks.conftest import save_artifact
from repro.eval.sweeps import dram_latency_variant, rob_variant, sweep
from repro.workloads import make_indirect_stream

_WORKLOAD = make_indirect_stream("sensitivity", table_words=16 * 1024, iterations=250, seed=31)


def test_rob_sensitivity(benchmark, artifact_dir):
    result = benchmark.pedantic(
        sweep,
        args=(_WORKLOAD, [rob_variant(n) for n in (64, 128, 192, 384)]),
        rounds=1,
        iterations=1,
    )
    save_artifact(artifact_dir, "sweep_rob.txt", result.render())
    # A bigger window lets the insecure machine hide more latency, but STT's
    # delays scale with it too: the gap persists at every size.
    for variant in result.variants:
        assert result.table[variant]["STT{ld}"] >= result.table[variant]["Perfect"] * 0.98


def test_dram_latency_sensitivity(benchmark, artifact_dir):
    result = benchmark.pedantic(
        sweep,
        args=(_WORKLOAD, [dram_latency_variant(n) for n in (50, 100, 200)]),
        rounds=1,
        iterations=1,
    )
    save_artifact(artifact_dir, "sweep_dram.txt", result.render())
    # Slower DRAM widens taint windows: STT's normalized cost should not
    # shrink as DRAM gets slower.
    stt = [result.table[v]["STT{ld}"] for v in result.variants]
    assert stt[-1] >= stt[0] * 0.9
