"""Tables I and II: regenerated from the live configuration objects."""

from benchmarks.conftest import save_artifact
from repro.common.config import MachineConfig
from repro.eval.tables import render_table1, render_table2, table1_rows, table2_rows


def test_table1_regenerate(benchmark, artifact_dir):
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    save_artifact(artifact_dir, "table1.txt", text)


def test_table2_regenerate(benchmark, artifact_dir):
    text = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    save_artifact(artifact_dir, "table2.txt", text)


def test_table1_matches_paper_parameters():
    rows = {name: params for name, params in table1_rows(MachineConfig())}
    assert "8 fetch/decode/issue/commit" in rows["Pipeline"]
    assert "32/32 SQ/LQ" in rows["Pipeline"]
    assert "192 ROB" in rows["Pipeline"]
    assert rows["L1 D-Cache"].startswith("32KB, 64B line, 8-way, 2-cycle")
    assert rows["L2 Cache"].startswith("256KB, 64B line, 8-way, 12-cycle")
    assert rows["L3 Cache"].startswith("2048KB, 64B line, 8-way, 40-cycle")
    assert rows["Network"].startswith("4x2 mesh")
    assert rows["Coherence Protocol"] == "Directory-based MESI protocol"


def test_table2_matches_paper_variants():
    names = [name for name, _ in table2_rows()]
    assert names == [
        "Unsafe", "STT{ld}", "STT{ld+fp}",
        "Static L1", "Static L2", "Static L3", "Hybrid", "Perfect",
    ]
