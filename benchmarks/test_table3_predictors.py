"""Table III: precision and accuracy of the evaluated SDO predictors."""

import pytest

from benchmarks.conftest import save_artifact
from repro.common import AttackModel
from repro.eval.tables import render_table3, table3_rows

MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)


@pytest.fixture(scope="module")
def table3(sweep_results):
    rows = table3_rows(sweep_results)
    return {row[0]: row[1:] for row in rows}


def test_table3_regenerate(benchmark, sweep_results, artifact_dir):
    text = benchmark.pedantic(render_table3, args=(sweep_results,), rounds=1, iterations=1)
    save_artifact(artifact_dir, "table3.txt", text)


class TestTable3Shape:
    """Paper: Hybrid has the highest precision, followed by Static L1;
    Static L2/L3 have low precision but higher accuracy."""

    def _cell(self, table3, config, model, kind):
        index = {"prec": 0, "acc": 1}[kind] + (0 if model is AttackModel.SPECTRE else 2)
        value = table3[config][index]
        assert value != "-", f"no predictions recorded for {config}"
        return value

    @pytest.mark.parametrize("model", MODELS)
    def test_statics_precision_equals_accuracy_for_l1(self, table3, model):
        prec = self._cell(table3, "Static L1", model, "prec")
        acc = self._cell(table3, "Static L1", model, "acc")
        assert prec == pytest.approx(acc, abs=1e-9)

    @pytest.mark.parametrize("model", MODELS)
    def test_accuracy_monotone_in_static_depth(self, table3, model):
        """Predicting deeper is never less accurate (i <= j is easier)."""
        l1 = self._cell(table3, "Static L1", model, "acc")
        l2 = self._cell(table3, "Static L2", model, "acc")
        l3 = self._cell(table3, "Static L3", model, "acc")
        assert l1 <= l2 + 1e-9 <= l3 + 2e-9

    @pytest.mark.parametrize("model", MODELS)
    def test_deep_statics_are_imprecise(self, table3, model):
        """Static L2/L3 precision is far below their accuracy."""
        for config in ("Static L2", "Static L3"):
            prec = self._cell(table3, config, model, "prec")
            acc = self._cell(table3, config, model, "acc")
            assert prec < acc

    @pytest.mark.parametrize("model", MODELS)
    def test_hybrid_beats_deep_statics_on_precision(self, table3, model):
        hybrid = self._cell(table3, "Hybrid", model, "prec")
        assert hybrid > self._cell(table3, "Static L2", model, "prec")
        assert hybrid > self._cell(table3, "Static L3", model, "prec")

    @pytest.mark.parametrize("model", MODELS)
    def test_perfect_is_perfect(self, table3, model):
        assert self._cell(table3, "Perfect", model, "prec") == pytest.approx(100.0)
        assert self._cell(table3, "Perfect", model, "acc") == pytest.approx(100.0)
