"""Figure 8: squashes vs normalized execution time, per SDO variant."""

import pytest

from benchmarks.conftest import save_artifact
from repro.common import AttackModel
from repro.eval import build_figure8
from repro.sim import SDO_CONFIG_NAMES

MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)


@pytest.fixture(scope="module")
def figure8(sweep_results):
    return build_figure8(sweep_results, SDO_CONFIG_NAMES)


def test_figure8_regenerate(benchmark, sweep_results, artifact_dir):
    figure = benchmark.pedantic(
        build_figure8, args=(sweep_results, SDO_CONFIG_NAMES), rounds=1, iterations=1
    )
    for model in MODELS:
        text = figure.render(model)
        text += f"\ncorrelation excl. Static L3: {figure.correlation(model):.3f}\n"
        save_artifact(artifact_dir, f"figure8_{model.value}.txt", text)


class TestFigure8Shape:
    @pytest.mark.parametrize("model", MODELS)
    def test_every_sdo_variant_has_a_point(self, figure8, model):
        assert set(figure8.by_config(model)) == set(SDO_CONFIG_NAMES)

    @pytest.mark.parametrize("model", MODELS)
    def test_perfect_squashes_least(self, figure8, model):
        """The oracle never fails an Obl-Ld; only FP subnormal mispredicts
        (statically predicted) remain."""
        points = figure8.by_config(model)
        perfect = points["Perfect"].squashes
        assert perfect <= min(points[c].squashes for c in points) + 1e-9

    @pytest.mark.parametrize("model", MODELS)
    def test_static_l1_squashes_most_among_statics(self, figure8, model):
        """Predicting L1 always is the least accurate static choice."""
        points = figure8.by_config(model)
        assert points["Static L1"].squashes >= points["Static L2"].squashes
        assert points["Static L1"].squashes >= points["Static L3"].squashes

    @pytest.mark.parametrize("model", MODELS)
    def test_overhead_correlates_with_squashes(self, figure8, model):
        """'Performance overhead is roughly proportional to the number of
        squashes' (Static L3 excluded, as in the paper)."""
        assert figure8.correlation(model) > 0.3
