"""Figure 6: execution time normalized to Unsafe (the paper's main result).

Regenerates the figure's rows (per benchmark, per design variant, per
attack model) from the shared sweep, writes the artifact, and asserts the
reproduction's *shape*: protections cost time, SDO recovers most of STT's
overhead, Perfect bounds the technique.
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.common import AttackModel
from repro.eval import build_figure6, to_csv

MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)


@pytest.fixture(scope="module")
def figure6(sweep_results):
    return build_figure6(sweep_results)


def test_figure6_regenerate(benchmark, sweep_results, artifact_dir):
    figure = benchmark.pedantic(build_figure6, args=(sweep_results,), rounds=1, iterations=1)
    for model in MODELS:
        save_artifact(artifact_dir, f"figure6_{model.value}.txt", figure.render(model))
        rows = [[w] + [figure.data[model][c][w] for c in figure.configs] for w in figure.workloads]
        (artifact_dir / f"figure6_{model.value}.csv").write_text(
            to_csv(["benchmark"] + list(figure.configs), rows)
        )


class TestFigure6Shape:
    """The claims Figure 6 supports, checked on our reproduction."""

    @pytest.mark.parametrize("model", MODELS)
    def test_protection_costs_time_on_average(self, figure6, model):
        for config in ("STT{ld}", "STT{ld+fp}", "Hybrid"):
            assert figure6.average(model, config) >= 0.99

    @pytest.mark.parametrize("model", MODELS)
    def test_sdo_beats_stt_on_average(self, figure6, model):
        """STT+SDO outperforms STT with Hybrid and the best Static."""
        stt = figure6.average(model, "STT{ld}")
        assert figure6.average(model, "Hybrid") < stt
        best_static = min(figure6.average(model, f"Static L{i}") for i in (1, 2, 3))
        assert best_static < stt

    @pytest.mark.parametrize("model", MODELS)
    def test_perfect_bounds_the_predictors(self, figure6, model):
        perfect = figure6.average(model, "Perfect")
        assert perfect <= figure6.average(model, "Hybrid") * 1.02
        assert perfect <= figure6.average(model, "Static L2") * 1.02

    @pytest.mark.parametrize("model", MODELS)
    def test_stt_ldfp_at_least_stt_ld(self, figure6, model):
        assert figure6.average(model, "STT{ld+fp}") >= figure6.average(model, "STT{ld}") * 0.995

    def test_fp_protection_bites_in_futuristic(self, figure6):
        """The {ld}->{ld+fp} gap is pronounced in the Futuristic model."""
        gap = figure6.average(
            AttackModel.FUTURISTIC, "STT{ld+fp}"
        ) - figure6.average(AttackModel.FUTURISTIC, "STT{ld}")
        assert gap > 0.005

    @pytest.mark.parametrize("model", MODELS)
    def test_headline_improvement(self, figure6, model):
        """SDO improves STT substantially (paper: 36.3%..55.1% averages)."""
        best = max(
            figure6.improvement_over(model, config, "STT{ld}")
            for config in ("Hybrid", "Static L2", "Static L3")
        )
        assert best > 0.25, f"best SDO improvement over STT{{ld}} only {best:.1%}"

    def test_futuristic_overheads_exceed_spectre(self, figure6):
        assert figure6.average(
            AttackModel.FUTURISTIC, "STT{ld}"
        ) >= figure6.average(AttackModel.SPECTRE, "STT{ld}") * 0.98

    @pytest.mark.parametrize("model", MODELS)
    def test_low_pressure_workloads_unaffected(self, figure6, model):
        """Compute-bound kernels see (near-)zero overhead everywhere."""
        for config in figure6.configs:
            assert figure6.data[model][config]["exchange2_like"] < 1.05
