"""Raw simulator performance: cycles simulated per second.

Not a paper artifact — a regression guard for the engine itself, so that
instrumentation added later doesn't silently make the reproduction sweep
intractable.
"""

import pytest

from repro.common import AttackModel
from repro.sim import RunRequest, config_by_name, execute
from repro.workloads import make_indirect_stream

_WORKLOAD = make_indirect_stream("bench_kernel", table_words=8192, iterations=250, seed=5)


@pytest.mark.parametrize("config_name", ["Unsafe", "STT{ld}", "Hybrid"])
def test_simulation_throughput(benchmark, config_name):
    request = RunRequest(
        workload=_WORKLOAD,
        config=config_by_name(config_name),
        attack_model=AttackModel.SPECTRE,
    )
    metrics = benchmark.pedantic(execute, args=(request,), rounds=3, iterations=1)
    assert metrics.instructions > 500


def test_golden_check_cost(benchmark):
    """The ISS shadow check should not dominate simulation time."""
    request = RunRequest(
        workload=_WORKLOAD,
        config=config_by_name("Unsafe"),
        attack_model=AttackModel.SPECTRE,
        check_golden=False,
    )
    benchmark.pedantic(execute, args=(request,), rounds=3, iterations=1)
