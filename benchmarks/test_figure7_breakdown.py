"""Figure 7: overhead breakdown for the SDO variants, averaged over the suite."""

import pytest

from benchmarks.conftest import save_artifact
from repro.common import AttackModel
from repro.eval import build_figure7
from repro.eval.figure7 import COMPONENTS
from repro.sim import SDO_CONFIG_NAMES

MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)


@pytest.fixture(scope="module")
def figure7(sweep_results):
    return build_figure7(sweep_results, configs=SDO_CONFIG_NAMES)


def test_figure7_regenerate(benchmark, sweep_results, artifact_dir):
    figure = benchmark.pedantic(
        build_figure7, args=(sweep_results,), kwargs={"configs": SDO_CONFIG_NAMES},
        rounds=1, iterations=1,
    )
    for model in MODELS:
        save_artifact(artifact_dir, f"figure7_{model.value}.txt", figure.render(model))


class TestFigure7Shape:
    @pytest.mark.parametrize("model", MODELS)
    def test_fractions_sum_to_one(self, figure7, model):
        for config, parts in figure7.data[model].items():
            if figure7.overhead_cycles[model][config] > 0:
                assert sum(parts.values()) == pytest.approx(1.0, abs=1e-6)
            assert set(parts) == set(COMPONENTS)

    @pytest.mark.parametrize("model", MODELS)
    def test_prediction_is_a_major_source(self, figure7, model):
        """'Inaccurate and imprecise cache level prediction is a major
        source of overhead' — paper, Section VIII-C."""
        for config in ("Static L1", "Static L2"):
            parts = figure7.data[model][config]
            prediction_share = parts["inaccurate prediction"] + parts["imprecise prediction"]
            assert prediction_share > 0.05

    @pytest.mark.parametrize("model", MODELS)
    def test_validation_and_tlb_are_minor(self, figure7, model):
        """'Validation stall and TLB/virtual memory protection constitute a
        small portion of the overhead.'"""
        for parts in figure7.data[model].values():
            assert parts["validation stall"] + parts["TLB protection"] < 0.5

    @pytest.mark.parametrize("model", MODELS)
    def test_perfect_has_no_inaccuracy_share(self, figure7, model):
        """A perfect predictor never fails an Obl-Ld, so its breakdown has
        (essentially) no inaccurate-prediction component."""
        parts = figure7.data[model]["Perfect"]
        assert parts["inaccurate prediction"] < 0.25

    @pytest.mark.parametrize("model", MODELS)
    def test_perfect_still_has_overhead(self, figure7, model):
        """'Interestingly, there is still performance overhead, even if the
        location predictor is perfect.'"""
        assert figure7.overhead_cycles[model]["Perfect"] > 0
