"""Ablations of the design choices DESIGN.md calls out.

* **Early forwarding** (Section V-C2 optimization): forwarding a success
  response from the wait buffer as soon as the load is safe, instead of
  waiting for the deepest predicted level.  Ablating it should cost time
  for imprecise predictors (Static L3) and change nothing for precise ones.
* **TLB pressure** (Section V-B): with small (4KB) pages the DO TLB probe
  misses constantly and every Obl-Ld fails — quantifies why SDO leans on
  low L1-TLB miss rates.
"""

import dataclasses


from benchmarks.conftest import save_artifact
from repro.common import AttackModel, MachineConfig
from repro.common.config import TlbConfig
from repro.eval import render_table
from repro.sim import RunRequest, config_by_name, execute
from repro.workloads import make_indirect_stream

_WORKLOAD = make_indirect_stream(
    "ablation_kernel", table_words=96 * 1024, iterations=200, unroll=2, seed=21
)


def _run(config_name, machine):
    return execute(
        RunRequest(
            workload=_WORKLOAD,
            config=config_by_name(config_name),
            attack_model=AttackModel.SPECTRE,
            machine=machine,
        )
    )


def test_ablation_early_forwarding(benchmark, artifact_dir):
    def sweep():
        rows = []
        for config_name in ("Static L3", "Hybrid"):
            base_machine = MachineConfig()
            with_fwd = _run(config_name, base_machine)
            protection = dataclasses.replace(
                config_by_name(config_name).protection_config(AttackModel.SPECTRE),
                early_forwarding=False,
            )
            without_fwd = _run(config_name, base_machine.with_protection(protection))
            rows.append(
                [
                    config_name,
                    with_fwd.cycles,
                    without_fwd.cycles,
                    without_fwd.cycles / with_fwd.cycles,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        artifact_dir,
        "ablation_early_forwarding.txt",
        render_table(
            ["config", "cycles (early fwd)", "cycles (no early fwd)", "ratio"],
            rows,
            title="Ablation: early forwarding from the wait buffer",
        ),
    )
    # Disabling the optimization never helps.
    for _, with_fwd, without_fwd, _ in rows:
        assert without_fwd >= with_fwd * 0.99


def test_ablation_tlb_pressure(benchmark, artifact_dir):
    def sweep():
        rows = []
        for label, tlb in (
            ("64KB pages (default)", TlbConfig()),
            ("4KB pages", TlbConfig(entries=64, assoc=4, page_size=4096)),
        ):
            machine = dataclasses.replace(MachineConfig(), tlb=tlb)
            metrics = _run("Hybrid", machine)
            rows.append(
                [label, metrics.cycles, metrics.stats.get("mem.obl_tlb_fails", 0), metrics.squashes]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        artifact_dir,
        "ablation_tlb_pressure.txt",
        render_table(
            ["TLB setup", "cycles", "DO TLB probe fails", "SDO squashes"],
            rows,
            title="Ablation: DO TLB probe pressure (Section V-B)",
        ),
    )
    default_fails, small_page_fails = rows[0][2], rows[1][2]
    assert small_page_fails > default_fails
